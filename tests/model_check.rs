//! Bounded model checking of the engine protocol on the vendored
//! `interleave` checker (`cargo test --features model-check --test model_check`).
//!
//! Every scenario here is explored over **all interleavings** of 2–3 threads
//! under a small preemption bound, with the suite's atomics routed through
//! `smr::sync` onto the checker's C11 acquire/release + modification-order
//! semantics — weaker than the x86 the native tests run on. The scenarios
//! assert two properties across every explored schedule:
//!
//! * **no use-after-free** — an object a reader holds protected (hazard
//!   slot, announced epoch/interval, Hyaline reference) is never handed back
//!   by `eject`/`scan` while the reader still uses it; and
//! * **count balance** — every retired entry comes back exactly once
//!   (ejected or drained), and the cdrc domain ends with
//!   `allocated() == freed()`.
//!
//! "Freeing" is simulated: ejection sets an exempt side-table flag that the
//! reader asserts against, so a protocol violation becomes a checker-reported
//! panic instead of real undefined behaviour.
//!
//! Bounds (see `interleave::Config`): preemption bound 1–2 depending on the
//! scenario's op count, 1–2 shared words, ≤3 threads. The epoch-clock litmus
//! justifies the `GlobalEpoch::advance` SeqCst→AcqRel relaxation (PR 3's
//! ordering table); the sticky-decrement litmus licenses the reference
//! counters' Relaxed-increment / Release-decrement discipline (and shows a
//! Relaxed decrement letting the disposer miss another owner's writes); the
//! unlink litmus pair *defends* the engine's SeqCst unlink swap/CAS —
//! `unlink_acqrel_swap_is_unsound` exhibits the eject-rule violation that
//! the tempting AcqRel relaxation opens, and the publication litmus shows
//! Relaxed additionally tearing the displaced payload; the IBR regression
//! re-seeds the PR 5 `PROTECTS_SECTION_READS` hole and demonstrates the
//! checker catches it. The weak-upgrade and tag-RMW scenarios drive the
//! remaining RcWord paths — weak snapshot/promotion racing the final strong
//! drop, and tag RMWs racing a CAS with witness discipline — through the
//! same full-stack exploration, now with the relaxed counters modeled.

use std::sync::{Arc, Barrier, Mutex, MutexGuard};

use cdrc::{AtomicSharedPtr, AtomicWeakPtr, DomainRef, SharedPtr, StrongRef};
use interleave::thread as mthread;
use interleave::{try_check, Config, Report, Violation};
use smr::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use smr::sync::exempt;
use smr::{current_tid, AcquireRetire, Ebr, GlobalEpoch, Hp, Hyaline, Ibr, Retired, SmrConfig};

// ---------------------------------------------------------------------------
// Harness discipline
// ---------------------------------------------------------------------------

/// Serializes the tests in this binary *and* pins the registry's high-water
/// mark before any exploration starts.
///
/// Scheme scans iterate announcement slots `0..registered_high_water_mark()`,
/// and the mark only grows. If it grew *mid-exploration* (another test's
/// threads registering, or this scenario's own threads raising it on the
/// first iteration), the number of modeled loads per scan would differ
/// between a recorded tape and its replay — a spurious nondeterminism
/// report. Pre-warming with more concurrent registrations than any scenario
/// uses fixes the mark for the whole process; the mutex keeps other tests'
/// slot churn out of an in-progress exploration.
fn serial() -> MutexGuard<'static, ()> {
    static M: Mutex<()> = Mutex::new(());
    let g = M.lock().unwrap_or_else(|e| e.into_inner());
    let gate = Arc::new(Barrier::new(4));
    let warmers: Vec<_> = (0..4)
        .map(|_| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _ = current_tid();
                gate.wait();
            })
        })
        .collect();
    for w in warmers {
        w.join().unwrap();
    }
    g
}

fn cfg(preemptions: usize) -> Config {
    Config {
        preemption_bound: Some(preemptions),
        ..Config::default()
    }
}

/// Scheme tuning that makes every protocol edge reachable within the bounds:
/// the epoch clock ticks on every allocation, a single retired entry
/// triggers a scan, and Hyaline distributes one-node batches.
fn tight<S: AcquireRetire>() -> SmrConfig {
    let mut c = S::default_config();
    c.epoch_freq = 1;
    c.eject_threshold = 1;
    c.batch_size = 1;
    c.prefetch = false;
    c.max_garbage = None;
    c
}

/// Fake object addresses: nonzero, 8-aligned (no tag bits), and identical
/// across iterations so schedules replay deterministically. The schemes
/// treat retired words as opaque — nothing dereferences them.
const OBJ_A: usize = 8;
const OBJ_B: usize = 16;

fn obj_idx(w: usize) -> usize {
    w / 8 - 1
}

// ---------------------------------------------------------------------------
// Per-scheme announce/scan handshake: reader vs. retirer
// ---------------------------------------------------------------------------

/// One reader holds an acquired pointer inside a critical section while the
/// root swaps it out, retires it, and ejects everything a scan releases.
/// Across every interleaving: the reader's object is never ejected while
/// held, and both objects are handed back exactly once afterwards.
fn reader_vs_retirer<S: AcquireRetire + Send + Sync + 'static>() -> Result<Report, Violation> {
    try_check(cfg(2), || {
        let s = Arc::new(S::new(Arc::new(GlobalEpoch::new()), tight::<S>()));
        let t = current_tid();
        let birth_a = s.birth_epoch(t);
        let slot = Arc::new(AtomicUsize::new(OBJ_A));
        let ejected = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);

        let reader = {
            let s = Arc::clone(&s);
            let slot = Arc::clone(&slot);
            let ejected = Arc::clone(&ejected);
            mthread::spawn(move || {
                let t = current_tid();
                s.begin_critical_section(t);
                let (w, g) = s.acquire(t, &slot);
                if w != 0 {
                    // Let the retirer run a full retire/scan/eject pass
                    // while we still hold the protection.
                    mthread::yield_now();
                    let gone = exempt(|| ejected[obj_idx(w)].load(Ordering::Relaxed));
                    assert!(
                        !gone,
                        "{}: ejected an object a reader still holds acquired",
                        S::scheme_name()
                    );
                }
                s.release(t, g);
                s.end_critical_section(t);
            })
        };

        let birth_b = s.birth_epoch(t);
        let old = slot.swap(OBJ_B, Ordering::SeqCst);
        s.retire(
            t,
            Retired {
                addr: old,
                birth: birth_a,
            },
        );
        s.flush(t);
        while let Some(r) = s.eject(t) {
            exempt(|| ejected[obj_idx(r.addr)].store(true, Ordering::Relaxed));
        }
        reader.join().unwrap();

        // Quiesce: retire the survivor too, then every entry must come back
        // exactly once — via eject or the final drain, never both or neither.
        s.retire(
            t,
            Retired {
                addr: OBJ_B,
                birth: birth_b,
            },
        );
        s.flush(t);
        while let Some(r) = s.eject(t) {
            exempt(|| ejected[obj_idx(r.addr)].store(true, Ordering::Relaxed));
        }
        let drained = unsafe { s.drain_all() };
        let mut returns = [0usize; 2];
        for (i, flag) in ejected.iter().enumerate() {
            returns[i] += exempt(|| flag.load(Ordering::Relaxed)) as usize;
        }
        for r in &drained {
            returns[obj_idx(r.addr)] += 1;
        }
        assert_eq!(
            returns,
            [1, 1],
            "{}: retire/eject count imbalance",
            S::scheme_name()
        );
    })
}

#[test]
fn ebr_reader_vs_retirer_has_no_uaf() {
    let _s = serial();
    reader_vs_retirer::<Ebr>().expect("EBR handshake violates protection under some interleaving");
}

#[test]
fn ibr_reader_vs_retirer_has_no_uaf() {
    let _s = serial();
    reader_vs_retirer::<Ibr>().expect("IBR handshake violates protection under some interleaving");
}

#[test]
fn hp_reader_vs_retirer_has_no_uaf() {
    let _s = serial();
    reader_vs_retirer::<Hp>().expect("HP handshake violates protection under some interleaving");
}

#[test]
fn hyaline_reader_vs_retirer_has_no_uaf() {
    let _s = serial();
    reader_vs_retirer::<Hyaline>()
        .expect("Hyaline handshake violates protection under some interleaving");
}

// ---------------------------------------------------------------------------
// RcWord load / witness / install / retire through the full cdrc stack
// ---------------------------------------------------------------------------

/// A reader snapshots through a critical section while the root swaps in a
/// replacement and drops the displaced strong reference (decrement → retire
/// → scan in-model). After joining, a witness-seeded CAS retry exercises the
/// failure path, and the domain must balance its allocation ledger across
/// every interleaving.
fn rc_word_protocol<S: cdrc::Scheme + Send + Sync>() -> Result<Report, Violation> {
    try_check(cfg(1), || {
        let d: DomainRef<S> = DomainRef::with_config(tight::<S>());
        let t = current_tid();
        {
            let slot = Arc::new(AtomicSharedPtr::<u64, S>::new_in(
                SharedPtr::new_in(1, &d),
                &d,
            ));
            let stale = slot.load_tagged();

            let reader = {
                let d = d.clone();
                let slot = Arc::clone(&slot);
                mthread::spawn(move || {
                    let t = current_tid();
                    {
                        let cs = d.cs();
                        let snap = slot.get_snapshot(&cs);
                        if let Some(v) = snap.as_ref() {
                            let v = *v;
                            assert!(v == 1 || v == 2, "snapshot saw a never-installed value");
                        }
                    }
                    // Drain the decrement batch in-model: nothing protocol-
                    // relevant may run from real TLS destructors.
                    d.process_deferred(t);
                })
            };

            let two = SharedPtr::new_in(2, &d);
            let displaced = slot.swap(two.clone());
            drop(displaced);
            reader.join().unwrap();

            // Witness-seeded retry (single-threaded tail, so it costs no
            // schedule branching): the stale expected must fail and name the
            // current holder; retrying with the witness must succeed.
            let w = slot
                .compare_exchange(stale, &two)
                .expect_err("stale CAS must fail with a witness");
            let displaced = slot
                .compare_exchange(w, &two)
                .expect("witness-seeded retry must succeed");
            drop(displaced);
            drop(two);
            let Ok(slot) = Arc::try_unwrap(slot) else {
                panic!("reader clone was joined; the Arc must be unique");
            };
            drop(slot);
        }
        d.process_deferred(t);
        unsafe { d.drain_and_apply_all(t) };
        assert_eq!(
            d.allocated(),
            d.freed(),
            "{}: domain ledger unbalanced after quiescence",
            S::scheme_name()
        );
    })
}

#[test]
fn ebr_rc_word_protocol_balances() {
    let _s = serial();
    rc_word_protocol::<cdrc::EbrScheme>().expect("RcWord protocol violation under EBR");
}

#[test]
fn ibr_rc_word_protocol_balances() {
    let _s = serial();
    rc_word_protocol::<cdrc::IbrScheme>().expect("RcWord protocol violation under IBR");
}

#[test]
fn hp_rc_word_protocol_balances() {
    let _s = serial();
    rc_word_protocol::<cdrc::HpScheme>().expect("RcWord protocol violation under HP");
}

#[test]
fn hyaline_rc_word_protocol_balances() {
    let _s = serial();
    rc_word_protocol::<cdrc::HyalineScheme>().expect("RcWord protocol violation under Hyaline");
}

// ---------------------------------------------------------------------------
// Epoch-clock litmus: justifies `GlobalEpoch::advance` AcqRel
// ---------------------------------------------------------------------------

const NO_ANN: u64 = u64::MAX;

/// Distilled EBR eject race — advancer / announcing reader / unlink-scan
/// writer — with the clock advanced by `fetch_add(AcqRel)` exactly as
/// `GlobalEpoch::advance` now does. The writer stamps the retire epoch with
/// `stamp_order` and frees when the announcement is absent or newer than the
/// stamp. A SeqCst stamp participates in the total order with the reader's
/// SeqCst clock read, so a reader that announced an epoch the writer's stamp
/// predates is always visible; an Acquire stamp may read the clock stale and
/// under-stamp the retirement, freeing under a live announcement.
fn epoch_clock_litmus(stamp_order: Ordering) -> Result<Report, Violation> {
    try_check(cfg(2), move || {
        let clock = Arc::new(AtomicU64::new(0));
        let ann = Arc::new(AtomicU64::new(NO_ANN));
        let slot = Arc::new(AtomicUsize::new(1));
        let freed = Arc::new(AtomicBool::new(false));

        let advancer = {
            let clock = Arc::clone(&clock);
            // Ordering: AcqRel — mirrors `GlobalEpoch::advance`; the litmus
            // exists to show the *stamp load* is where SeqCst must remain.
            mthread::spawn(move || {
                clock.fetch_add(1, Ordering::AcqRel);
            })
        };

        let reader = {
            let clock = Arc::clone(&clock);
            let ann = Arc::clone(&ann);
            let slot = Arc::clone(&slot);
            let freed = Arc::clone(&freed);
            mthread::spawn(move || {
                // Section entry: announce the observed epoch, fence, then
                // trust subsequent reads (the `announce_fn!` idiom).
                let e = clock.load(Ordering::SeqCst);
                ann.store(e, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                let p = slot.load(Ordering::Relaxed);
                if p == 1 {
                    // Still linked from our announced epoch's vantage:
                    // give the writer a chance to scan, then check we were
                    // not freed from under the announcement.
                    mthread::yield_now();
                    let gone = exempt(|| freed.load(Ordering::Relaxed));
                    assert!(!gone, "object freed while an announcement protected it");
                }
                ann.store(NO_ANN, Ordering::Release);
            })
        };

        // Writer: unlink, stamp the retirement, scan announcements.
        slot.store(0, Ordering::SeqCst);
        let stamp = clock.load(stamp_order);
        fence(Ordering::SeqCst);
        let a = ann.load(Ordering::Relaxed);
        if a == NO_ANN || stamp < a {
            exempt(|| freed.store(true, Ordering::Relaxed));
        }
        advancer.join().unwrap();
        reader.join().unwrap();
    })
}

/// The relaxation the checker licenses: with the clock advanced by AcqRel
/// RMWs, a **SeqCst** retire-stamp load keeps every interleaving sound —
/// `GlobalEpoch::advance` does not need its old SeqCst success ordering.
#[test]
fn epoch_clock_seqcst_load_is_sound() {
    let _s = serial();
    let report = epoch_clock_litmus(Ordering::SeqCst)
        .expect("SeqCst retire stamp must be sound under an AcqRel clock");
    assert!(report.iterations > 1, "litmus explored only one schedule");
}

/// The boundary of that relaxation: weakening the retire-stamp load itself
/// to Acquire lets the writer under-stamp and free under a live
/// announcement — the checker finds the interleaving. This is why
/// `GlobalEpoch::load` stays SeqCst.
#[test]
fn epoch_clock_acquire_load_is_unsound() {
    let _s = serial();
    let v = epoch_clock_litmus(Ordering::Acquire)
        .expect_err("Acquire retire stamp must be caught by the checker");
    assert!(
        v.message
            .contains("freed while an announcement protected it"),
        "unexpected violation: {v}"
    );
}

// ---------------------------------------------------------------------------
// IBR PROTECTS_SECTION_READS regression (the PR 5 hole, re-seeded)
// ---------------------------------------------------------------------------

/// IBR advertises `PROTECTS_SECTION_READS = false`: a critical section only
/// protects objects born at or before the announced interval's end. This
/// scenario installs an object born *after* the reader's entry announcement.
/// The buggy consumer reads it with a bare load (what the PR 5 hole did);
/// the correct consumer goes through `acquire`, which widens the announced
/// interval before trusting the read.
fn ibr_section_read(use_acquire: bool) -> Result<Report, Violation> {
    try_check(cfg(2), move || {
        let s = Arc::new(Ibr::new(Arc::new(GlobalEpoch::new()), tight::<Ibr>()));
        let t = current_tid();
        let slot = Arc::new(AtomicUsize::new(0));
        let ejected = Arc::new(AtomicBool::new(false));

        let reader = {
            let s = Arc::clone(&s);
            let slot = Arc::clone(&slot);
            let ejected = Arc::clone(&ejected);
            mthread::spawn(move || {
                let t = current_tid();
                s.begin_critical_section(t);
                // Let the writer allocate (advancing the epoch past our
                // announced interval) and install.
                mthread::yield_now();
                let (w, g) = if use_acquire {
                    s.acquire(t, &slot)
                } else {
                    // Re-seeded hole: trusting a section-time read without
                    // the acquire protocol. The interval announced at entry
                    // does not cover an object born after it.
                    (slot.load(Ordering::Acquire), Default::default())
                };
                if w != 0 {
                    mthread::yield_now();
                    let gone = exempt(|| ejected.load(Ordering::Relaxed));
                    assert!(
                        !gone,
                        "IBR ejected an object born beyond the announced bound"
                    );
                }
                s.release(t, g);
                s.end_critical_section(t);
            })
        };

        let birth_b = s.birth_epoch(t);
        slot.store(OBJ_B, Ordering::Release);
        mthread::yield_now();
        let old = slot.swap(0, Ordering::SeqCst);
        s.retire(
            t,
            Retired {
                addr: old,
                birth: birth_b,
            },
        );
        s.flush(t);
        while s.eject(t).is_some() {
            exempt(|| ejected.store(true, Ordering::Relaxed));
        }
        reader.join().unwrap();

        let drained = unsafe { s.drain_all() };
        let returns = exempt(|| ejected.load(Ordering::Relaxed)) as usize + drained.len();
        assert_eq!(returns, 1, "IBR retire/eject count imbalance");
    })
}

#[test]
fn ibr_section_reads_hole_is_detected() {
    let _s = serial();
    let v = ibr_section_read(false).expect_err("the checker must catch the section-reads hole");
    assert!(
        v.message.contains("born beyond the announced bound"),
        "unexpected violation: {v}"
    );
}

#[test]
fn ibr_acquire_closes_the_hole() {
    let _s = serial();
    ibr_section_read(true).expect("acquire-protocol reads must be protected in every schedule");
}

// ---------------------------------------------------------------------------
// Weak-upgrade protocol: snapshot / promotion racing the final strong drop
// ---------------------------------------------------------------------------

/// An `AtomicWeakPtr` holder snapshots and promotes while the main thread
/// drops the *only* strong reference. Across every interleaving: a non-null
/// weak snapshot's payload stays readable (disposal is deferred through the
/// snapshot's dispose-instance protection) even when the object expires
/// mid-snapshot; `try_promote` fails exactly when the strong count already
/// hit zero; and the domain ledger balances after quiescence.
fn weak_upgrade_protocol<S: cdrc::Scheme + Send + Sync>() -> Result<Report, Violation> {
    try_check(cfg(1), || {
        let d: DomainRef<S> = DomainRef::with_config(tight::<S>());
        let t = current_tid();
        {
            let strong = SharedPtr::<u64, S>::new_in(5, &d);
            let wslot = Arc::new(AtomicWeakPtr::new(strong.downgrade()));

            let upgrader = {
                let d = d.clone();
                let wslot = Arc::clone(&wslot);
                mthread::spawn(move || {
                    let t = current_tid();
                    {
                        let cs = d.weak_cs();
                        let snap = wslot.get_snapshot(&cs);
                        if !snap.is_null() {
                            // Readable even if the strong drop already won
                            // the race: the snapshot defers disposal.
                            let v = *snap.as_ref().expect("non-null snapshot must deref");
                            assert_eq!(v, 5, "weak snapshot read a destroyed payload");
                            if let Some(s) = snap.try_promote() {
                                // The promotion owns a fresh strong count,
                                // so the object cannot be expired now.
                                assert!(!snap.expired(), "promoted object reported expired");
                                assert_eq!(*s.as_ref().unwrap(), 5);
                                drop(s);
                            }
                        }
                    }
                    d.process_deferred(t);
                })
            };

            // The final strong drop: the object expires (dispose retires on
            // the dispose channel) while the upgrader may hold a snapshot.
            drop(strong);
            upgrader.join().unwrap();

            let Ok(wslot) = Arc::try_unwrap(wslot) else {
                panic!("upgrader was joined; the Arc must be unique");
            };
            drop(wslot);
        }
        d.process_deferred(t);
        unsafe { d.drain_and_apply_all(t) };
        assert_eq!(
            d.allocated(),
            d.freed(),
            "{}: domain ledger unbalanced after weak-upgrade race",
            S::scheme_name()
        );
    })
}

#[test]
fn ebr_weak_upgrade_protocol_balances() {
    let _s = serial();
    weak_upgrade_protocol::<cdrc::EbrScheme>().expect("weak-upgrade violation under EBR");
}

#[test]
fn ibr_weak_upgrade_protocol_balances() {
    let _s = serial();
    weak_upgrade_protocol::<cdrc::IbrScheme>().expect("weak-upgrade violation under IBR");
}

#[test]
fn hp_weak_upgrade_protocol_balances() {
    let _s = serial();
    weak_upgrade_protocol::<cdrc::HpScheme>().expect("weak-upgrade violation under HP");
}

#[test]
fn hyaline_weak_upgrade_protocol_balances() {
    let _s = serial();
    weak_upgrade_protocol::<cdrc::HyalineScheme>().expect("weak-upgrade violation under Hyaline");
}

// ---------------------------------------------------------------------------
// Tag-RMW protocol: fetch_or_tag racing a CAS, with witness discipline
// ---------------------------------------------------------------------------

/// A marker thread ORs a tag bit into the word while the main thread CASes
/// in a replacement. Across every interleaving: the mark never duplicates
/// (its previous word always carries tag 0 — the CAS only installs untagged
/// words), a failed CAS hands back a witness naming exactly the marked
/// occupant, the witness-seeded retry lands, and `try_set_tag` honours the
/// same witness discipline single-threaded. Ledger balances afterwards.
fn tag_rmw_protocol<S: cdrc::Scheme + Send + Sync>() -> Result<Report, Violation> {
    try_check(cfg(1), || {
        let d: DomainRef<S> = DomainRef::with_config(tight::<S>());
        let t = current_tid();
        {
            let one = SharedPtr::<u64, S>::new_in(1, &d);
            let one_addr = one.addr();
            let slot = Arc::new(AtomicSharedPtr::<u64, S>::new_in(one.clone(), &d));
            let stale = slot.load_tagged();

            let marker = {
                let d = d.clone();
                let slot = Arc::clone(&slot);
                mthread::spawn(move || {
                    let prev = slot.fetch_or_tag(1);
                    assert_eq!(prev.tag(), 0, "mark applied twice");
                    assert_ne!(prev.addr(), 0, "mark landed on an empty location");
                    d.process_deferred(current_tid());
                })
            };

            let two = SharedPtr::new_in(2, &d);
            match slot.compare_exchange(stale, &two) {
                // CAS won the race: the marker tags the *new* occupant.
                Ok(displaced) => drop(displaced),
                // The mark beat us: the witness must carry the same address
                // with the mark bit — nothing else touches the word.
                Err(w) => {
                    assert_eq!(w.addr(), one_addr, "witness names a foreign occupant");
                    assert_eq!(w.tag(), 1, "failed CAS witness lost the observed mark");
                    let displaced = slot
                        .compare_exchange(w, &two)
                        .expect("witness-seeded retry must succeed");
                    drop(displaced);
                }
            }
            marker.join().unwrap();

            // Single-threaded tail: try_set_tag witness discipline.
            let cur = slot.load_tagged();
            let tagged = slot
                .try_set_tag(cur, 2)
                .expect("try_set_tag with a live witness must land");
            assert_eq!(tagged.tag() & 2, 2, "try_set_tag dropped its bit");
            let w = slot
                .try_set_tag(cur, 4)
                .expect_err("try_set_tag with a stale witness must fail");
            assert_eq!(w, tagged, "failure witness must name the current word");

            drop(two);
            drop(one);
            let Ok(slot) = Arc::try_unwrap(slot) else {
                panic!("marker was joined; the Arc must be unique");
            };
            drop(slot);
        }
        d.process_deferred(t);
        unsafe { d.drain_and_apply_all(t) };
        assert_eq!(
            d.allocated(),
            d.freed(),
            "{}: domain ledger unbalanced after tag-RMW race",
            S::scheme_name()
        );
    })
}

#[test]
fn ebr_tag_rmw_protocol_balances() {
    let _s = serial();
    tag_rmw_protocol::<cdrc::EbrScheme>().expect("tag-RMW violation under EBR");
}

#[test]
fn ibr_tag_rmw_protocol_balances() {
    let _s = serial();
    tag_rmw_protocol::<cdrc::IbrScheme>().expect("tag-RMW violation under IBR");
}

#[test]
fn hp_tag_rmw_protocol_balances() {
    let _s = serial();
    tag_rmw_protocol::<cdrc::HpScheme>().expect("tag-RMW violation under HP");
}

#[test]
fn hyaline_tag_rmw_protocol_balances() {
    let _s = serial();
    tag_rmw_protocol::<cdrc::HyalineScheme>().expect("tag-RMW violation under Hyaline");
}

// ---------------------------------------------------------------------------
// Unlink publication litmus: the swap's Release/Acquire halves
// ---------------------------------------------------------------------------

/// Distilled RcWord unlink, publication duties only. The engine's `install`
/// swap carries three duties: Release (publish the new occupant's payload),
/// Acquire (make the displaced occupant readable for its deferred
/// decrement), and SeqCst placement before the retire stamp. This litmus
/// isolates the first two by program-ordering the clock tick inside the
/// installer (a birth epoch), so the SC duty never comes into play: AcqRel
/// passes, and weakening to Relaxed loses the Acquire half — the displaced
/// payload read tears, and the checker finds the schedule. The SC duty is
/// demonstrated separately by `unlink_clock_litmus`, where the clock
/// advances on an *unordered* thread and AcqRel itself breaks.
fn rc_unlink_litmus(swap_order: Ordering) -> Result<Report, Violation> {
    try_check(cfg(2), move || {
        let clock = Arc::new(AtomicU64::new(0));
        let ann = Arc::new(AtomicU64::new(NO_ANN));
        let slot = Arc::new(AtomicUsize::new(0));
        let payload = Arc::new(AtomicUsize::new(0));
        let freed = Arc::new(AtomicBool::new(false));

        // Installer models allocate-then-install: tick the clock (the birth
        // epoch), initialize the payload, publish with Release — what
        // `store_owned` does on the way in.
        let installer = {
            let clock = Arc::clone(&clock);
            let slot = Arc::clone(&slot);
            let payload = Arc::clone(&payload);
            mthread::spawn(move || {
                // Ordering: AcqRel — mirrors `GlobalEpoch::advance`.
                clock.fetch_add(1, Ordering::AcqRel);
                payload.store(0xA5, Ordering::Relaxed);
                // Ordering: Release — the publication half of an install.
                slot.store(OBJ_A, Ordering::Release);
            })
        };

        let reader = {
            let clock = Arc::clone(&clock);
            let ann = Arc::clone(&ann);
            let slot = Arc::clone(&slot);
            let payload = Arc::clone(&payload);
            let freed = Arc::clone(&freed);
            mthread::spawn(move || {
                let e = clock.load(Ordering::SeqCst);
                ann.store(e, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                let p = slot.load(Ordering::Acquire);
                if p == OBJ_A {
                    // Publication: an Acquire load that saw the install
                    // must see the payload initialization.
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        0xA5,
                        "reader saw an uninitialized payload"
                    );
                    mthread::yield_now();
                    let gone = exempt(|| freed.load(Ordering::Relaxed));
                    assert!(!gone, "object freed while an announcement protected it");
                }
                ann.store(NO_ANN, Ordering::Release);
            })
        };

        // Writer (main): the engine's install — swap-unlink at `swap_order`,
        // read the displaced payload (the deferred decrement reads the
        // displaced header), stamp the retire SeqCst, scan the announcement.
        let old = slot.swap(0, swap_order);
        if old == OBJ_A {
            assert_eq!(
                payload.load(Ordering::Relaxed),
                0xA5,
                "displaced payload torn: the swap lost its Acquire half"
            );
            let stamp = clock.load(Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let a = ann.load(Ordering::Relaxed);
            if a == NO_ANN || stamp < a {
                exempt(|| freed.store(true, Ordering::Relaxed));
            }
        }
        installer.join().unwrap();
        reader.join().unwrap();
    })
}

/// With the clock tick ordered before publication, AcqRel covers both
/// publication duties in every interleaving — isolating exactly what the
/// Release and Acquire halves of the unlink buy.
#[test]
fn rc_unlink_acqrel_swap_covers_publication() {
    let _s = serial();
    let report = rc_unlink_litmus(Ordering::AcqRel)
        .expect("AcqRel must cover the unlink swap's publication duties");
    assert!(report.iterations > 1, "litmus explored only one schedule");
}

/// Dropping to Relaxed loses the Acquire half and the displaced occupant's
/// payload read tears — the checker finds the interleaving. Together with
/// `unlink_acqrel_swap_is_unsound` this brackets the engine's unlink at
/// SeqCst: Relaxed tears the displaced read, AcqRel breaks the eject rule.
#[test]
fn rc_unlink_relaxed_swap_is_unsound() {
    let _s = serial();
    let v = rc_unlink_litmus(Ordering::Relaxed)
        .expect_err("Relaxed unlink swap must be caught by the checker");
    assert!(
        v.message.contains("displaced payload torn")
            || v.message
                .contains("freed while an announcement protected it"),
        "unexpected violation: {v}"
    );
}

// ---------------------------------------------------------------------------
// Unlink-clock litmus: why the engine's unlink stays SeqCst — plus the
// announcement-exit handshake
// ---------------------------------------------------------------------------

/// The full eject handshake with the clock advanced by an *unordered*
/// thread — the realistic shape, since any allocating thread may tick the
/// epoch. The eject rule ("free when the announcement is absent or newer
/// than the retire stamp") is sound only through the SC chain
/// unlink ≤ stamp ≤ reader's clock read ≤ reader's fence: a reader that
/// announces a newer-than-stamp epoch is thereby forced to observe the
/// unlink, so it can never hold the retired pointer. A SeqCst unlink swap
/// closes the chain; an AcqRel swap drops out of the SC order and the
/// checker finds the schedule where the reader announces a fresh epoch,
/// still loads the *stale* pointer, and the scan under-stamps and frees it.
/// This is the litmus that keeps `RcWord::install`/`cex` at SeqCst.
///
/// The reader side doubles as the announcement-exit handshake: its exit is
/// the single `Release` store EBR uses, and the writer may only clobber
/// ("free") the payload after its scan observes the exit or a covered
/// announcement. The exit's Release *floor* (protected reads must not sink
/// below the un-announcement) is a compiler-reordering concern the
/// operational checker cannot exhibit — it never reorders a thread's own
/// accesses — so that boundary is documented here rather than demonstrated.
fn unlink_clock_litmus(swap_order: Ordering) -> Result<Report, Violation> {
    try_check(cfg(2), move || {
        let clock = Arc::new(AtomicU64::new(0));
        let ann = Arc::new(AtomicU64::new(NO_ANN));
        let slot = Arc::new(AtomicUsize::new(OBJ_A));
        let payload = Arc::new(AtomicUsize::new(0xA5));

        let advancer = {
            let clock = Arc::clone(&clock);
            // Ordering: AcqRel — mirrors `GlobalEpoch::advance`.
            mthread::spawn(move || {
                clock.fetch_add(1, Ordering::AcqRel);
            })
        };

        let reader = {
            let clock = Arc::clone(&clock);
            let ann = Arc::clone(&ann);
            let slot = Arc::clone(&slot);
            let payload = Arc::clone(&payload);
            mthread::spawn(move || {
                let e = clock.load(Ordering::SeqCst);
                ann.store(e, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                let p = slot.load(Ordering::Acquire);
                if p == OBJ_A {
                    mthread::yield_now();
                    // Protected read: must precede the exit and must never
                    // see the writer's post-exit clobber.
                    let v = payload.load(Ordering::Relaxed);
                    assert_eq!(v, 0xA5, "payload clobbered under a live announcement");
                }
                // The section exit under test: one Release store.
                // Ordering: Release — orders every protected read above
                // before the un-announcement a scan may act on.
                ann.store(NO_ANN, Ordering::Release);
            })
        };

        // Writer: unlink, stamp, scan; "free" by clobbering the payload.
        let old = slot.swap(0, swap_order);
        assert_eq!(old, OBJ_A);
        let stamp = clock.load(Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let a = ann.load(Ordering::Relaxed);
        if a == NO_ANN || stamp < a {
            payload.store(0xDEAD, Ordering::Relaxed);
        }
        advancer.join().unwrap();
        reader.join().unwrap();
    })
}

/// The handshake the engine actually runs: a SeqCst unlink keeps every
/// schedule sound, announcement exits included.
#[test]
fn unlink_seqcst_swap_is_sound() {
    let _s = serial();
    let report = unlink_clock_litmus(Ordering::SeqCst)
        .expect("the SeqCst-unlink eject handshake must be sound in every schedule");
    assert!(report.iterations > 1, "litmus explored only one schedule");
}

/// The tempting relaxation, refuted: an AcqRel unlink leaves the SC order,
/// so a freshly-announced reader can still load the stale pointer while the
/// under-stamped scan frees it. This is why `RcWord::install` and the CAS
/// success ordering stay SeqCst.
#[test]
fn unlink_acqrel_swap_is_unsound() {
    let _s = serial();
    let v = unlink_clock_litmus(Ordering::AcqRel)
        .expect_err("an AcqRel unlink must be caught breaking the eject rule");
    assert!(
        v.message
            .contains("payload clobbered under a live announcement"),
        "unexpected violation: {v}"
    );
}

// ---------------------------------------------------------------------------
// IBR scan-read litmus: the scan's fence + ordered interval-pair reads
// ---------------------------------------------------------------------------

const IBR_EMPTY: u64 = u64::MAX;

/// Distilled IBR scan against a reader announcing `[2, 2]` and reading the
/// slot on the stable-epoch fast path. The scan side models `Ibr::scan`
/// exactly: SeqCst fence, `begin` loaded Acquire *before* `end` loaded
/// Relaxed, and the `hi.max(lo)` tear fix-up. Sound with the fence: if the
/// scan misses the announcement, it fenced first, so the reader's
/// post-announce load observes the unlink and holds nothing. The boundary
/// case omits the scan-head fence — the scan can then miss a live
/// announcement *while* the reader reads the retired object, and the
/// checker finds the schedule (this is the pairing `Ibr::scan`'s fence
/// comment describes).
fn ibr_scan_read_litmus(with_fence: bool) -> Result<Report, Violation> {
    try_check(cfg(2), move || {
        let begin = Arc::new(AtomicU64::new(IBR_EMPTY));
        let end = Arc::new(AtomicU64::new(IBR_EMPTY));
        let slot = Arc::new(AtomicUsize::new(OBJ_A)); // born at epoch 2
        let freed = Arc::new(AtomicBool::new(false));

        let reader = {
            let begin = Arc::clone(&begin);
            let end = Arc::clone(&end);
            let slot = Arc::clone(&slot);
            let freed = Arc::clone(&freed);
            mthread::spawn(move || {
                // Section entry at epoch 2: `begin` first, then `end`, then
                // the announcement fence (the `announce_u64` idiom).
                begin.store(2, Ordering::Relaxed);
                end.store(2, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                // Stable-epoch fast path: one post-fence load, no extension.
                let p = slot.load(Ordering::Acquire);
                if p == OBJ_A {
                    mthread::yield_now();
                    let gone = exempt(|| freed.load(Ordering::Relaxed));
                    assert!(
                        !gone,
                        "IBR scan freed an object covered by the announced interval"
                    );
                }
                // Section exit: `begin` first (a torn scan read sees either
                // [EMPTY, ..] or the old conservative pair).
                begin.store(IBR_EMPTY, Ordering::Release);
                end.store(IBR_EMPTY, Ordering::Release);
            })
        };

        // Scanner (main): unlink OBJ_A (lifetime [2, 2]) and scan.
        let old = slot.swap(0, Ordering::AcqRel);
        assert_eq!(old, OBJ_A);
        if with_fence {
            fence(Ordering::SeqCst);
        }
        // Ordering discipline under test: `begin` (Acquire) pins the read
        // order; a stale `end` pairs with an older-or-equal `begin`, and
        // `hi.max(lo)` turns entry tears into supersets.
        let lo = begin.load(Ordering::Acquire);
        let hi = end.load(Ordering::Relaxed);
        let covered = lo != IBR_EMPTY && {
            let hi = hi.max(lo);
            lo <= 2 && 2 <= hi
        };
        if !covered {
            exempt(|| freed.store(true, Ordering::Relaxed));
        }
        reader.join().unwrap();
    })
}

#[test]
fn ibr_scan_read_handshake_is_sound() {
    let _s = serial();
    let report = ibr_scan_read_litmus(true)
        .expect("the fenced scan-read protocol must be sound in every schedule");
    assert!(report.iterations > 1, "litmus explored only one schedule");
}

#[test]
fn ibr_scan_without_fence_is_caught() {
    let _s = serial();
    let v = ibr_scan_read_litmus(false)
        .expect_err("an unfenced scan must be caught missing a live announcement");
    assert!(
        v.message.contains("covered by the announced interval"),
        "unexpected violation: {v}"
    );
}

// ---------------------------------------------------------------------------
// Sticky-decrement litmus: licenses the counters' Release decrement
// ---------------------------------------------------------------------------

/// Distilled reference-count drop — the relaxation `StickyCounter` and
/// `CasCounter` run on (Relaxed increments, Release decrements, Acquire
/// fence on the zero transition, as in `Arc`). Two owners share a count of
/// 2; the spawned owner writes the payload before releasing its reference.
/// Whichever decrement zeroes the count fences and "disposes" by asserting
/// the payload: the zero observer read the other owner's decrement through
/// the counter's RMW chain, so with a Release decrement the fence makes
/// that owner's prior write visible in every schedule. With a Relaxed
/// decrement the release edge is gone and the checker finds the schedule
/// where the disposer reads the payload stale — destroying an object while
/// missing another owner's writes to it.
fn sticky_decrement_litmus(decr_order: Ordering) -> Result<Report, Violation> {
    try_check(cfg(2), move || {
        let count = Arc::new(AtomicU64::new(2));
        let payload = Arc::new(AtomicUsize::new(0));

        let owner = {
            let count = Arc::clone(&count);
            let payload = Arc::clone(&payload);
            mthread::spawn(move || {
                // This owner's last use of the object...
                payload.store(0xA5, Ordering::Relaxed);
                // ...then its reference drop.
                if count.fetch_sub(1, decr_order) == 1 {
                    fence(Ordering::Acquire);
                    assert_eq!(
                        payload.load(Ordering::Relaxed),
                        0xA5,
                        "disposer missed an owner's pre-release write"
                    );
                }
            })
        };

        // Main owner never writes; if its decrement zeroes the count, the
        // other owner's write and decrement already happened.
        if count.fetch_sub(1, decr_order) == 1 {
            fence(Ordering::Acquire);
            assert_eq!(
                payload.load(Ordering::Relaxed),
                0xA5,
                "disposer missed an owner's pre-release write"
            );
        }
        owner.join().unwrap();
    })
}

/// The relaxation the checker licenses: Release decrements with an Acquire
/// fence on the zero path keep disposal sound in every schedule — the
/// counters do not need the paper's blanket SeqCst.
#[test]
fn sticky_release_decrement_is_sound() {
    let _s = serial();
    let report = sticky_decrement_litmus(Ordering::Release)
        .expect("Release decrement + Acquire fence must be sound in every schedule");
    assert!(report.iterations > 1, "litmus explored only one schedule");
}

/// The boundary: a Relaxed decrement drops the release edge and the
/// disposer can read the dying object stale. This is why `decrement` sits
/// at Release, not lower.
#[test]
fn sticky_relaxed_decrement_is_unsound() {
    let _s = serial();
    let v = sticky_decrement_litmus(Ordering::Relaxed)
        .expect_err("a Relaxed decrement must be caught by the checker");
    assert!(
        v.message
            .contains("disposer missed an owner's pre-release write"),
        "unexpected violation: {v}"
    );
}
