//! Immediate recursive destruction and per-thread decrement batching:
//!
//! * million-node structures drop without stack overflow, on every scheme,
//!   through both the graph (immediate) and non-graph (deferred) paths and
//!   through the structure `Drop` impls (rc and manual lists);
//! * every teardown balances `allocated() == freed()`;
//! * batched decrements reach the deferred machinery at each flush point —
//!   section exit, batch-capacity overflow, thread unregister, and
//!   last-handle domain teardown;
//! * a proptest model checks batching is observationally invisible: a
//!   store/swap/take sequence over a slot behaves exactly like a `Vec`
//!   model, and the domain still balances afterwards.

use smr::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use cdrc::{
    AtomicSharedPtr, DomainRef, EbrScheme, EdgeCollector, GraphNode, HpScheme, HyalineScheme,
    IbrScheme, Scheme, SharedPtr,
};
use lockfree::manual::HarrisMichaelList;
use lockfree::rc::RcHarrisMichaelList;
use lockfree::ConcurrentMap;

const MILLION: usize = 1_000_000;

// ---------------------------------------------------------------------
// Chain scaffolding: a graph node (immediate destruction) and a plain
// node (deferred path), identical layout.
// ---------------------------------------------------------------------

struct GraphChain<S: Scheme> {
    next: AtomicSharedPtr<GraphChain<S>, S>,
}

impl<S: Scheme> GraphNode<S> for GraphChain<S> {
    fn pop_edges(&mut self, out: &mut EdgeCollector<'_, S>) {
        out.take_atomic(&mut self.next);
    }
}

struct PlainChain<S: Scheme> {
    next: AtomicSharedPtr<PlainChain<S>, S>,
}

fn build_graph_chain<S: Scheme>(d: &DomainRef<S>, n: usize) -> SharedPtr<GraphChain<S>, S> {
    let mut head: SharedPtr<GraphChain<S>, S> = SharedPtr::null();
    for _ in 0..n {
        let node = SharedPtr::new_graph_in(
            GraphChain {
                next: AtomicSharedPtr::null_in(d),
            },
            d,
        );
        let old = std::mem::replace(&mut head, node);
        head.as_ref().unwrap().next.store(old);
    }
    head
}

fn build_plain_chain<S: Scheme>(d: &DomainRef<S>, n: usize) -> SharedPtr<PlainChain<S>, S> {
    let mut head: SharedPtr<PlainChain<S>, S> = SharedPtr::null();
    for _ in 0..n {
        let node = SharedPtr::new_in(
            PlainChain {
                next: AtomicSharedPtr::null_in(d),
            },
            d,
        );
        let old = std::mem::replace(&mut head, node);
        head.as_ref().unwrap().next.store(old);
    }
    head
}

/// Drives `d` until it balances (bounded), without touching other slots.
fn settle<S: Scheme>(d: &DomainRef<S>) {
    let t = smr::current_tid();
    for _ in 0..64 {
        if d.allocated() == d.freed() {
            return;
        }
        d.process_deferred(t);
    }
    assert_eq!(d.allocated(), d.freed(), "domain failed to settle");
}

// ---------------------------------------------------------------------
// 1. Million-node drops are stack-safe and balance, per scheme.
// ---------------------------------------------------------------------

fn million_graph_chain<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let head = build_graph_chain(&d, MILLION);
    assert_eq!(d.allocated() - d.freed(), MILLION as u64);
    // The drop destructs the whole chain iteratively, right here.
    drop(head);
    settle(&d);
}

#[test]
fn million_node_graph_chain_all_schemes() {
    million_graph_chain::<EbrScheme>();
    million_graph_chain::<IbrScheme>();
    million_graph_chain::<HpScheme>();
    million_graph_chain::<HyalineScheme>();
}

/// The non-graph path: each level re-defers its child, so reclamation takes
/// one collect round per level — it must iterate, never recurse.
fn million_plain_chain<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let head = build_plain_chain(&d, MILLION);
    drop(head);
    let t = smr::current_tid();
    // One call: process_deferred loops internally until nothing is left.
    d.process_deferred(t);
    assert_eq!(d.allocated(), d.freed());
}

#[test]
fn million_node_plain_chain_is_stack_safe() {
    // One scheme suffices for the stack-safety property (the deferred
    // apply loop is scheme-independent); the graph test covers all four.
    million_plain_chain::<EbrScheme>();
}

/// Structure-level coverage: descending keys make every insert a head
/// insert, so building is O(n) and the list's `Drop` faces the full chain.
fn million_rc_list<S: Scheme>(n: usize) {
    let d: DomainRef<S> = DomainRef::new();
    let list: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new_in(d.clone());
    for k in (0..n as u64).rev() {
        assert!(list.insert(k, k));
    }
    drop(list);
    assert_eq!(d.allocated(), d.freed(), "rc list Drop balances");
}

#[test]
fn million_node_rc_list_drop_all_schemes() {
    million_rc_list::<EbrScheme>(MILLION);
    million_rc_list::<IbrScheme>(MILLION);
    million_rc_list::<HpScheme>(MILLION);
    million_rc_list::<HyalineScheme>(MILLION);
}

fn million_manual_list<S: smr::AcquireRetire>(n: usize) {
    let list: HarrisMichaelList<u64, u64, S> = HarrisMichaelList::new();
    for k in (0..n as u64).rev() {
        assert!(list.insert(k, k));
    }
    drop(list); // the shared iterative teardown walker
}

#[test]
fn million_node_manual_list_drop_all_schemes() {
    million_manual_list::<smr::Ebr>(MILLION);
    million_manual_list::<smr::Ibr>(MILLION);
    million_manual_list::<smr::Hp>(MILLION);
    million_manual_list::<smr::Hyaline>(MILLION);
}

// ---------------------------------------------------------------------
// 2. Batch flush points, observed through payload drops.
// ---------------------------------------------------------------------

/// Payload whose `Drop` bumps a counter: observable disposal.
struct Tracked {
    drops: Arc<AtomicUsize>,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

fn tracked<S: Scheme>(d: &DomainRef<S>, drops: &Arc<AtomicUsize>) -> SharedPtr<Tracked, S> {
    SharedPtr::new_in(
        Tracked {
            drops: Arc::clone(drops),
        },
        d,
    )
}

/// Fewer than `BATCH_CAP` displaced decrements sit in the calling thread's
/// buffer; no explicit flush API is ever called. Ordinary section activity
/// alone (open a guard, store once, close it — each exit flushes whatever
/// is pending) must drain them. If the section-exit hook did not flush,
/// the first batch would sit in the buffer forever and the loop below
/// would never converge.
fn flush_at_section_exit<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let drops = Arc::new(AtomicUsize::new(0));
    let slot: AtomicSharedPtr<Tracked, S> = AtomicSharedPtr::null_in(&d);
    for _ in 0..8 {
        slot.store(tracked(&d, &drops)); // displaced drop → batched
    }
    let mut spins = 0;
    while drops.load(Ordering::SeqCst) < 7 {
        // Plain section churn — never process_deferred.
        let cs = d.cs();
        slot.store(tracked(&d, &drops));
        drop(cs);
        spins += 1;
        assert!(spins < 10_000, "section exits never flushed the batch");
    }
    drop(slot);
    settle(&d);
}

#[test]
fn batch_flushes_at_section_exit_all_schemes() {
    flush_at_section_exit::<EbrScheme>();
    flush_at_section_exit::<IbrScheme>();
    flush_at_section_exit::<HpScheme>();
    flush_at_section_exit::<HyalineScheme>();
}

/// Overflow flush: more than one batch capacity of displaced decrements on
/// a thread that never opens an explicit section still reclaims (capacity
/// flushes collect as they go; the remainder is picked up below the cap by
/// the orphan/teardown machinery when the slot drops).
fn flush_at_capacity<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let slot: AtomicSharedPtr<Tracked, S> = AtomicSharedPtr::null_in(&d);
        for _ in 0..1_000 {
            slot.store(tracked(&d, &drops));
        }
        // Well over one capacity: overflow flushes must have run — most of
        // the displaced payloads are already disposed without any section
        // or explicit drain.
        assert!(
            drops.load(Ordering::SeqCst) > 500,
            "capacity overflow never flushed (only {} drops)",
            drops.load(Ordering::SeqCst)
        );
        drop(slot);
    }
    settle(&d);
    assert_eq!(drops.load(Ordering::SeqCst), 1_000);
}

#[test]
fn batch_flushes_at_capacity_all_schemes() {
    flush_at_capacity::<EbrScheme>();
    flush_at_capacity::<IbrScheme>();
    flush_at_capacity::<HpScheme>();
    flush_at_capacity::<HyalineScheme>();
}

/// A worker thread leaves fewer than one capacity of batched decrements
/// behind and exits without flushing anything explicitly. Its unregister
/// callback must hand them to the slot's retired lists so ordinary,
/// non-exclusive collection recovers them: retired lists are slot-local,
/// so successor threads reusing the dead slot drive the drain — no
/// exclusive `drain_and_apply_all`, no surviving reference to the worker.
/// (The callback-ran-at-all property is pinned down by the white-box
/// `unregister_flushes_pending_batch` unit test in `cdrc::domain`.)
fn flush_at_thread_unregister<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let d = d.clone();
        let drops = Arc::clone(&drops);
        std::thread::spawn(move || {
            let slot: AtomicSharedPtr<Tracked, S> = AtomicSharedPtr::null_in(&d);
            for _ in 0..8 {
                slot.store(tracked(&d, &drops));
            }
            drop(slot);
            // Thread exit: the registry runs the flush callback.
        })
        .join()
        .unwrap();
    }
    let mut spins = 0;
    while drops.load(Ordering::SeqCst) < 8 {
        let d2 = d.clone();
        std::thread::spawn(move || d2.process_deferred(smr::current_tid()))
            .join()
            .unwrap();
        spins += 1;
        assert!(spins < 1_000, "dead thread's batch never reclaimed");
    }
    settle(&d);
}

#[test]
fn batch_flushes_at_thread_unregister_all_schemes() {
    flush_at_thread_unregister::<EbrScheme>();
    flush_at_thread_unregister::<IbrScheme>();
    flush_at_thread_unregister::<HpScheme>();
    flush_at_thread_unregister::<HyalineScheme>();
}

/// Dropping the last user handle while batched decrements are pending:
/// the orphan-teardown path must flush them, observable purely through
/// payload drops (no domain handle survives to ask).
fn flush_at_domain_teardown<S: Scheme>() {
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let d: DomainRef<S> = DomainRef::new();
        let slot: AtomicSharedPtr<Tracked, S> = AtomicSharedPtr::null_in(&d);
        for _ in 0..8 {
            slot.store(tracked(&d, &drops));
        }
        drop(slot);
        drop(d); // last handle: orphan teardown flushes and applies
    }
    assert_eq!(drops.load(Ordering::SeqCst), 8);
}

#[test]
fn batch_flushes_at_domain_teardown_all_schemes() {
    flush_at_domain_teardown::<EbrScheme>();
    flush_at_domain_teardown::<IbrScheme>();
    flush_at_domain_teardown::<HpScheme>();
    flush_at_domain_teardown::<HyalineScheme>();
}

// ---------------------------------------------------------------------
// 3. Proptest: batching is observationally invisible.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Op {
    Store(u64),
    Swap(u64),
    Take,
    Load,
    /// Close and reopen the ambient section (forces a flush mid-sequence).
    Cycle,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..100).prop_map(Op::Store),
        (0u64..100).prop_map(Op::Swap),
        Just(Op::Take),
        Just(Op::Load),
        Just(Op::Cycle),
    ]
}

/// Runs `ops` against a real slot and a plain `Option<u64>` model; every
/// observable value must match, and the domain must balance afterwards —
/// whether a decrement was applied inline, batched, or flushed early can
/// never show through.
fn batched_matches_model<S: Scheme>(ops: &[Op]) {
    let d: DomainRef<S> = DomainRef::new();
    {
        let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::null_in(&d);
        let mut model: Option<u64> = None;
        let mut cs = Some(d.cs());
        for &o in ops {
            match o {
                Op::Store(v) => {
                    slot.store(SharedPtr::new_in(v, &d));
                    model = Some(v);
                }
                Op::Swap(v) => {
                    let prev = slot.swap(SharedPtr::new_in(v, &d));
                    assert_eq!(prev.as_ref().copied(), model);
                    model = Some(v);
                }
                Op::Take => {
                    let prev = slot.take();
                    assert_eq!(prev.as_ref().copied(), model);
                    model = None;
                }
                Op::Load => {
                    let cur = slot.load();
                    assert_eq!(cur.as_ref().copied(), model);
                }
                Op::Cycle => {
                    // Close first (drops the guard and flushes), then reopen.
                    drop(cs.take());
                    cs = Some(d.cs());
                }
            }
        }
        drop(cs);
        drop(slot);
    }
    settle(&d);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn batching_is_observationally_invisible(ops in proptest::collection::vec(op(), 1..120)) {
        batched_matches_model::<EbrScheme>(&ops);
        batched_matches_model::<HpScheme>(&ops);
    }
}
