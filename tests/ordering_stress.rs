//! Contention stress tests for the relaxed memory-ordering policy.
//!
//! The fence-discipline overhaul (see README's "Memory-ordering policy")
//! replaced blanket `SeqCst` with Acquire/Release orderings plus one
//! `fence(SeqCst)` per critical-section entry / hazard publication. These
//! tests are the tripwire an over-relaxed ordering would hit: N writer
//! threads hammer insert/remove (or store/CAS) while reader threads hold
//! snapshots under batched guards, and afterwards the domain must satisfy
//! `allocated() == freed()` — the leak/double-free invariant. A protection
//! bug (an eject racing a still-protected reader) shows up here as a
//! use-after-free crash or a `debug_assert` in the count machinery; a lost
//! deferred decrement shows up as a counter imbalance.
//!
//! Integration-test binaries run in their own process, so metering the
//! per-scheme global domains only needs the serialization mutex below.

use smr::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use cdrc::{
    AtomicSharedPtr, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme, SharedPtr, TaggedPtr,
};
use lockfree::rc::{RcDoubleLinkQueue, RcHarrisMichaelList};
use lockfree::{ConcurrentMap, ConcurrentQueue};

static METER: Mutex<()> = Mutex::new(());

/// Runs `f`, then drains the scheme's global domain and asserts every
/// control block the workload allocated was freed exactly once.
fn assert_balanced<S: Scheme>(f: impl FnOnce()) {
    let _g = METER.lock().unwrap();
    let d = S::global_domain();
    let t = smr::current_tid();
    // Safety: the meter mutex serializes every test in this binary; worker
    // threads of the closure are joined before it returns.
    unsafe { d.drain_and_apply_all(t) };
    let before = (d.allocated(), d.freed());
    f();
    unsafe { d.drain_and_apply_all(t) };
    let after = (d.allocated(), d.freed());
    let (allocated, freed) = (after.0 - before.0, after.1 - before.1);
    assert!(allocated > 0, "stress workload must allocate");
    assert_eq!(
        allocated, freed,
        "allocated == freed after teardown (leak or double-free otherwise)"
    );
}

/// N writers swap and CAS new objects into shared slots while readers take
/// guarded snapshots and promote some — the rawest exercise of the relaxed
/// pointer-word orderings in `cdrc::strong`.
fn slot_storm<S: Scheme>() {
    assert_balanced::<S>(|| {
        const SLOTS: usize = 8;
        let slots: Arc<Vec<AtomicSharedPtr<u64, S>>> =
            Arc::new((0..SLOTS).map(|_| AtomicSharedPtr::null()).collect());
        let done = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..3u64)
            .map(|w| {
                let slots = Arc::clone(&slots);
                std::thread::spawn(move || {
                    for i in 0..4_000u64 {
                        let slot = &slots[(w as usize + i as usize) % SLOTS];
                        if i % 3 == 0 {
                            // CAS against whatever is there; losing is fine —
                            // the pre-increment rollback path must balance.
                            let cur = slot.load_tagged();
                            let new: SharedPtr<u64, S> = SharedPtr::new(w * 1_000_000 + i);
                            // Drop the displaced value on success (deferred
                            // relinquish) and discard the witness on loss.
                            let _ = slot.compare_exchange(cur, &new).map(drop);
                        } else {
                            slot.store(SharedPtr::new(w * 1_000_000 + i));
                        }
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let slots = Arc::clone(&slots);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let d = S::global_domain();
                    while !done.load(Ordering::Relaxed) {
                        // Batched sections, as the guard API prescribes.
                        let cs = d.cs();
                        for slot in slots.iter() {
                            let snap = slot.get_snapshot(&cs);
                            if let Some(v) = snap.as_ref() {
                                assert!(*v < 3_000_000 + 4_000, "torn or stale object");
                            }
                            // Occasionally take a real reference through the
                            // snapshot (increment-under-protection path).
                            if snap.as_ref().map(|v| v % 7) == Some(0) {
                                drop(snap.to_shared());
                            }
                        }
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // Slots dropped here retire their final occupants.
        drop(slots);
    });
}

#[test]
fn slot_storm_ebr() {
    slot_storm::<EbrScheme>();
}

#[test]
fn slot_storm_ibr() {
    slot_storm::<IbrScheme>();
}

#[test]
fn slot_storm_hp() {
    slot_storm::<HpScheme>();
}

#[test]
fn slot_storm_hyaline() {
    slot_storm::<HyalineScheme>();
}

/// N writers hammer insert/remove on one list over a small, fully shared
/// key range (maximal node churn and traversal contention) while readers
/// walk it under batched guards holding snapshots of every edge.
fn list_churn<S: Scheme>() {
    assert_balanced::<S>(|| {
        let map: Arc<RcHarrisMichaelList<u64, u64, S>> = Arc::new(RcHarrisMichaelList::new());
        let done = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..2_500u64 {
                        let k = (w * 131 + i) % 64; // shared range: real contention
                        if i % 2 == 0 {
                            map.insert(k, k);
                        } else {
                            map.remove(&k);
                        }
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let map = Arc::clone(&map);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let guard = map.pin();
                        for k in 0..64u64 {
                            if let Some(v) = map.get_with(&k, &guard) {
                                assert_eq!(v, k, "value read through a freed node?");
                            }
                        }
                        drop(guard);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        drop(map);
    });
}

#[test]
fn list_churn_ebr() {
    list_churn::<EbrScheme>();
}

#[test]
fn list_churn_ibr() {
    list_churn::<IbrScheme>();
}

#[test]
fn list_churn_hp() {
    list_churn::<HpScheme>();
}

#[test]
fn list_churn_hyaline() {
    list_churn::<HyalineScheme>();
}

/// The weak-edge queue under pop/push contention: exercises the weak and
/// dispose instances' orderings (the Fig. 10 `prev` pointers) alongside the
/// strong ones.
fn queue_churn<S: Scheme>() {
    assert_balanced::<S>(|| {
        let q: Arc<RcDoubleLinkQueue<u64, S>> = Arc::new(RcDoubleLinkQueue::new());
        for i in 0..8u64 {
            q.enqueue(i);
        }
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let guard = q.pin();
                        if let Some(v) = q.dequeue_with(&guard) {
                            assert!(v < 8 + 4 * 2_000, "dequeued a freed value?");
                            q.enqueue_with(v, &guard);
                        }
                        if i % 64 == 0 {
                            drop(guard); // re-pin cadence of the harness
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        drop(q);
    });
}

#[test]
fn queue_churn_ebr() {
    queue_churn::<EbrScheme>();
}

#[test]
fn queue_churn_hp() {
    queue_churn::<HpScheme>();
}

/// Tag CAS paths (`fetch_or_tag`, `try_set_tag`) under racing stores: the
/// AcqRel tag linearization must never strand or duplicate a reference.
fn tag_storm<S: Scheme>() {
    assert_balanced::<S>(|| {
        let slot: Arc<AtomicSharedPtr<u64, S>> = Arc::new(AtomicSharedPtr::new(SharedPtr::new(0)));
        let hs: Vec<_> = (0..4u64)
            .map(|w| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    for i in 0..3_000u64 {
                        match (w + i) % 3 {
                            0 => {
                                slot.store(SharedPtr::new(i));
                            }
                            1 => {
                                let cur = slot.load_tagged();
                                let _ = slot.try_set_tag(cur, 0b1);
                            }
                            _ => {
                                let cur: TaggedPtr<u64> = slot.fetch_or_tag(0b10);
                                assert!(cur.tag() <= 0b11);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        drop(slot);
    });
}

#[test]
fn tag_storm_ebr() {
    tag_storm::<EbrScheme>();
}

#[test]
fn tag_storm_hyaline() {
    tag_storm::<HyalineScheme>();
}
