//! Resizable (split-ordered) hash map integration tests: concurrent
//! grow-under-churn per scheme, model equivalence against
//! `std::collections::HashMap`, and reclamation-domain balance after drop.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use cdrc::{DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};
use lockfree::manual::ResizableHashMap;
use lockfree::rc::RcResizableHashMap;
use lockfree::{ConcurrentMap, NodeStats};
use smr::AcquireRetire;

/// Inserts/removes racing growth: every worker churns its own key range
/// hard enough to force several mask doublings, then the survivors are
/// checked exactly.
fn grow_under_churn<M: ConcurrentMap<u64, u64>>(map: &M) {
    let threads = 8u64;
    let per = 600u64;
    std::thread::scope(|s| {
        for i in 0..threads {
            let map = &map;
            s.spawn(move || {
                for j in 0..per {
                    let k = i * 100_000 + j;
                    assert!(map.insert(k, k * 3), "fresh key {k} rejected");
                    assert_eq!(map.get(&k), Some(k * 3), "key {k} lost immediately");
                    if j % 3 != 0 {
                        assert!(map.remove(&k), "key {k} vanished before remove");
                    }
                }
            });
        }
    });
    for i in 0..threads {
        for j in 0..per {
            let k = i * 100_000 + j;
            let expect = if j % 3 == 0 { Some(k * 3) } else { None };
            assert_eq!(map.get(&k), expect, "key {k} wrong after churn");
        }
    }
}

#[test]
fn rc_grow_under_churn_all_schemes() {
    fn run<S: Scheme>() {
        let map: RcResizableHashMap<u64, u64, S> = RcResizableHashMap::new_in(DomainRef::new());
        grow_under_churn(&map);
        assert!(map.buckets() > 1, "table never grew");
    }
    run::<EbrScheme>();
    run::<IbrScheme>();
    run::<HpScheme>();
    run::<HyalineScheme>();
}

#[test]
fn manual_grow_under_churn_all_schemes() {
    fn run<S: AcquireRetire>() {
        let map: ResizableHashMap<u64, u64, S> = ResizableHashMap::new();
        grow_under_churn(&map);
        assert!(map.buckets() > 1, "table never grew");
    }
    run::<smr::Ebr>();
    run::<smr::Ibr>();
    run::<smr::Hp>();
    run::<smr::Hyaline>();
}

#[test]
fn rc_domain_balances_after_concurrent_churn_and_drop() {
    let domain: DomainRef<EbrScheme> = DomainRef::new();
    {
        let map: Arc<RcResizableHashMap<u64, u64, EbrScheme>> =
            Arc::new(RcResizableHashMap::new_in(domain.clone()));
        let hs: Vec<_> = (0..4u64)
            .map(|i| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for j in 0..1000 {
                        let k = i * 10_000 + j;
                        map.insert(k, k);
                        if j % 2 == 0 {
                            map.remove(&k);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
    // Safety: workers joined and the map is dropped — exclusive access.
    // Worker threads park deferred decrements in per-thread batches; the
    // map's Drop only flushes the dropping thread's, so the exact-balance
    // check needs the full drain (as in `tests/leaks.rs`).
    unsafe { domain.drain_and_apply_all(smr::current_tid()) };
    assert_eq!(
        domain.allocated(),
        domain.freed(),
        "sentinels, live nodes and deferred garbage all reclaimed at drop"
    );
}

#[test]
fn manual_stats_balance_after_concurrent_churn_and_drop() {
    let stats = Arc::new(NodeStats::new());
    {
        let map: Arc<ResizableHashMap<u64, u64, smr::Ebr>> =
            Arc::new(ResizableHashMap::with_capacity_shared(
                1,
                Arc::new(smr::Ebr::new(
                    Arc::new(smr::GlobalEpoch::new()),
                    smr::Ebr::default_config(),
                )),
                Arc::clone(&stats),
            ));
        let hs: Vec<_> = (0..4u64)
            .map(|i| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for j in 0..1000 {
                        let k = i * 10_000 + j;
                        map.insert(k, k);
                        if j % 2 == 0 {
                            map.remove(&k);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
    assert_eq!(stats.in_flight(), 0, "every node freed at drop");
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..200, 0u64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..200).prop_map(Op::Remove),
        (0u64..200).prop_map(Op::Get),
    ]
}

fn check_model<M: ConcurrentMap<u64, u64>>(map: &M, ops: &[Op]) {
    // A key range of 200 over sequences long enough to cross several
    // growth thresholds exercises splits mid-sequence.
    let mut model: HashMap<u64, u64> = HashMap::new();
    for &o in ops {
        match o {
            Op::Insert(k, v) => {
                // Insert-if-absent semantics, as everywhere in the suite.
                let absent = !model.contains_key(&k);
                if absent {
                    model.insert(k, v);
                }
                assert_eq!(map.insert(k, v), absent);
            }
            Op::Remove(k) => assert_eq!(map.remove(&k), model.remove(&k).is_some()),
            Op::Get(k) => assert_eq!(map.get(&k), model.get(&k).copied()),
        }
    }
    for (k, v) in &model {
        assert_eq!(map.get(k), Some(*v), "final state diverged at {k}");
    }
}

fn cfg() -> ProptestConfig {
    ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(cfg())]

    #[test]
    fn rc_resizable_matches_std_hashmap(ops in proptest::collection::vec(op(), 1..400)) {
        let map: RcResizableHashMap<u64, u64, EbrScheme> =
            RcResizableHashMap::new_in(DomainRef::new());
        check_model(&map, &ops);
    }

    #[test]
    fn manual_resizable_matches_std_hashmap(ops in proptest::collection::vec(op(), 1..400)) {
        let map: ResizableHashMap<u64, u64, smr::Hp> = ResizableHashMap::new();
        check_model(&map, &ops);
    }
}
