//! Negative suite for the reclamation sanitizer
//! (`cargo test --features sanitize --test sanitizer`).
//!
//! Each test builds a deliberately buggy access pattern — a missing
//! protection, a double retire, a dereference after retirement, a guard from
//! the wrong domain — and asserts the sanitizer catches it with the *right*
//! diagnostic: the message names the violation class, the offending call
//! site in this file, and (for block-state bugs) the block's captured event
//! trail.
//!
//! Two kinds of tests live here:
//!
//! * **hook-level lifecycle negatives** drive `smr::sanitize` directly with
//!   fake 8-aligned block addresses, emitting exactly the hook sequence a
//!   buggy engine would (the lifecycle checks are scheme-independent — every
//!   scheme funnels through the same hooks in `cdrc`'s counted-object
//!   layer); and
//! * **scheme-parameterized negatives** run real `cdrc` structures under all
//!   four schemes (EBR, IBR, HP, Hyaline), where the interesting behaviour
//!   *differs* by scheme: section-read coverage follows
//!   `PROTECTS_SECTION_READS`, disposal poisons payloads, and cross-domain
//!   guards are rejected.
//!
//! Fake addresses are tiny constants (`0x1000`–`0x2fff`) that can never
//! collide with a real heap allocation, so running these tests in the same
//! process as the rest of the suite cannot corrupt real shadow state.

#![cfg(feature = "sanitize")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cdrc::{AtomicSharedPtr, DomainRef, Scheme, SharedPtr, StrongRef};
use smr::sanitize::{self, Channel};
use smr::{current_tid, AcquireRetire, Ebr, GlobalEpoch, Hp, SmrConfig};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Runs `f`, asserts it panics, and returns the panic message.
fn panic_msg<F: FnOnce()>(f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a sanitizer panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Asserts `f` panics with a message containing every needle. Sanitizer
/// diagnostics must also name the offending call site, i.e. this file.
fn expect_caught<F: FnOnce()>(f: F, needles: &[&str]) -> String {
    let msg = panic_msg(f);
    for needle in needles {
        assert!(
            msg.contains(needle),
            "diagnostic missing {needle:?}:\n{msg}"
        );
    }
    assert!(
        msg.contains("tests/sanitizer.rs"),
        "diagnostic does not name the offending call site:\n{msg}"
    );
    msg
}

// ---------------------------------------------------------------------------
// Hook-level lifecycle negatives (fake block addresses)
// ---------------------------------------------------------------------------

#[test]
fn double_retire_on_dispose_channel_is_caught() {
    const A: usize = 0x1000;
    sanitize::on_alloc(A);
    sanitize::on_retire(A, Channel::Dispose);
    let msg = expect_caught(
        || sanitize::on_retire(A, Channel::Dispose),
        &["double retire on the dispose channel", "block 0x1000"],
    );
    // The diagnostic carries the block's event trail with the first retire.
    assert!(msg.contains("retire(dispose) at"), "trail missing:\n{msg}");
    assert!(msg.contains("alloc at"), "trail missing alloc:\n{msg}");
}

#[test]
fn multi_retire_on_count_channels_is_legal() {
    // Positive control: the acquire-retire interface allows the same address
    // to be retired many times on the count channels; only the dispose
    // channel is once-per-generation.
    const A: usize = 0x1040;
    sanitize::on_alloc(A);
    for _ in 0..3 {
        sanitize::on_retire(A, Channel::Strong);
        sanitize::on_retire(A, Channel::Weak);
        sanitize::on_decrement(A, Channel::Strong);
        sanitize::on_decrement(A, Channel::Weak);
    }
}

#[test]
fn strong_retire_of_disposed_block_is_caught() {
    const A: usize = 0x1080;
    sanitize::on_alloc(A);
    sanitize::on_dispose(A);
    // Weak retires of a disposed block are legal (weak holders outlive
    // disposal by design) …
    sanitize::on_retire(A, Channel::Weak);
    // … but a strong retire implies a strong reference that cannot exist.
    expect_caught(
        || sanitize::on_retire(A, Channel::Strong),
        &["strong retire of a disposed block"],
    );
}

#[test]
fn retire_after_free_is_caught() {
    const A: usize = 0x10c0;
    sanitize::on_alloc(A);
    sanitize::on_dispose(A);
    sanitize::on_free(A);
    expect_caught(
        || sanitize::on_retire(A, Channel::Weak),
        &["retire of a freed block"],
    );
}

#[test]
fn deref_after_retire_is_caught_on_both_channels() {
    const A: usize = 0x1100;
    sanitize::on_alloc(A);
    sanitize::on_dispose(A);
    // Payload reads die as soon as the block is disposed …
    expect_caught(
        || sanitize::check_payload(A),
        &["use after dispose", "payload read of a disposed block"],
    );
    // … while header reads (count inspection, upgrade) stay legal until the
    // block is actually freed.
    sanitize::check_header(A);
    sanitize::on_free(A);
    expect_caught(
        || sanitize::check_header(A),
        &["use after free", "header read of a freed block"],
    );
    expect_caught(
        || sanitize::check_payload(A),
        &["use after free", "payload read of a freed block"],
    );
}

#[test]
fn double_dispose_is_caught() {
    const A: usize = 0x1140;
    sanitize::on_alloc(A);
    sanitize::on_dispose(A);
    expect_caught(|| sanitize::on_dispose(A), &["double dispose"]);
}

#[test]
fn free_of_live_block_and_double_free_are_caught() {
    const A: usize = 0x1180;
    sanitize::on_alloc(A);
    expect_caught(|| sanitize::on_free(A), &["free of a still-live block"]);
    sanitize::on_dispose(A);
    sanitize::on_free(A);
    expect_caught(|| sanitize::on_free(A), &["double free"]);
}

#[test]
fn decrement_of_dead_block_is_caught() {
    const A: usize = 0x11c0;
    sanitize::on_alloc(A);
    sanitize::on_dispose(A);
    expect_caught(
        || sanitize::on_decrement(A, Channel::Strong),
        &["strong decrement applied to a disposed block"],
    );
    sanitize::on_free(A);
    expect_caught(
        || sanitize::on_decrement(A, Channel::Weak),
        &["count decrement applied to a freed block"],
    );
}

#[test]
fn install_of_retired_block_is_caught() {
    const A: usize = 0x1200;
    sanitize::on_alloc(A);
    sanitize::on_install(A); // legal while live
    sanitize::on_dispose(A);
    expect_caught(|| sanitize::on_install(A), &["install of a disposed block"]);
    sanitize::on_free(A);
    expect_caught(|| sanitize::on_install(A), &["install of a freed block"]);
}

#[test]
fn generation_stamp_distinguishes_reuse_from_double_free() {
    // A freed address legitimately coming back from the allocator bumps the
    // generation and starts a fresh lifecycle; the old trail stays visible.
    const A: usize = 0x1240;
    sanitize::on_alloc(A);
    sanitize::on_dispose(A);
    sanitize::on_free(A);
    sanitize::on_alloc(A); // reuse — legal
    sanitize::on_dispose(A);
    let msg = expect_caught(|| sanitize::check_payload(A), &["use after dispose"]);
    assert!(
        msg.contains("generation 1"),
        "reused block should be at generation 1:\n{msg}"
    );
}

#[test]
fn unprotected_read_outside_any_section_is_caught() {
    const A: usize = 0x1280;
    sanitize::on_alloc(A);
    expect_caught(
        || sanitize::check_protected_read(A),
        &[
            "unprotected read",
            "no critical section and no protection token",
        ],
    );
}

// ---------------------------------------------------------------------------
// Scheme-parameterized negatives (real cdrc structures, all four schemes)
// ---------------------------------------------------------------------------

/// Missing protection: a count-free (guard-backed) read covered only by an
/// open critical section is sound exactly when the scheme's sections protect
/// reads. Under EBR/Hyaline the read passes; under IBR/HP the sanitizer
/// flags the `PROTECTS_SECTION_READS = false` hole at the read site.
fn section_read_coverage<S: Scheme>(fake_addr: usize) {
    let d = DomainRef::<S>::new();
    sanitize::on_alloc(fake_addr);
    let read = || {
        let _cs = d.cs();
        sanitize::check_protected_read(fake_addr);
    };
    if S::PROTECTS_SECTION_READS {
        read(); // sound: the section alone covers the read
    } else {
        expect_caught(
            read,
            &["unprotected read", "PROTECTS_SECTION_READS = false"],
        );
    }
}

#[test]
fn section_read_coverage_ebr() {
    section_read_coverage::<cdrc::EbrScheme>(0x2000);
}
#[test]
fn section_read_coverage_ibr() {
    section_read_coverage::<cdrc::IbrScheme>(0x2040);
}
#[test]
fn section_read_coverage_hp() {
    section_read_coverage::<cdrc::HpScheme>(0x2080);
}
#[test]
fn section_read_coverage_hyaline() {
    section_read_coverage::<cdrc::HyalineScheme>(0x20c0);
}

/// Dereference after retirement, end to end on a real counted object: once
/// the last strong reference drops and deferred work runs, the payload is
/// disposed (and poison-filled 0xDB) while a weak holder keeps the block
/// allocated. A payload read on the disposed block must be caught; after
/// the weak holder leaves, the freed block must reject even header reads.
fn deref_after_retire<S: Scheme>() {
    let d = DomainRef::<S>::new();
    let t = current_tid();
    let x = SharedPtr::<u64, S>::new_in(0xA5, &d);
    let block = x.addr();
    let payload = x.as_ref().unwrap() as *const u64 as *const u8;
    let weak = x.downgrade();

    drop(x);
    d.process_deferred(t);

    // The weak holder keeps the allocation alive, so reading the raw payload
    // bytes is sound — and must observe the sanitizer's poison fill, proving
    // the value was dropped the moment the strong count hit zero.
    assert!(weak.upgrade().is_none());
    assert_eq!(
        unsafe { payload.read_volatile() },
        0xDB,
        "payload not poisoned"
    );

    expect_caught(
        || sanitize::check_payload(block),
        &["use after dispose", "dispose"],
    );
    sanitize::check_header(block); // weak-side header reads are still legal

    drop(weak);
    d.process_deferred(t);
    assert_eq!(d.allocated(), d.freed());
    expect_caught(|| sanitize::check_header(block), &["use after free"]);
}

#[test]
fn deref_after_retire_ebr() {
    deref_after_retire::<cdrc::EbrScheme>();
}
#[test]
fn deref_after_retire_ibr() {
    deref_after_retire::<cdrc::IbrScheme>();
}
#[test]
fn deref_after_retire_hp() {
    deref_after_retire::<cdrc::HpScheme>();
}
#[test]
fn deref_after_retire_hyaline() {
    deref_after_retire::<cdrc::HyalineScheme>();
}

/// Foreign-domain guard: snapshotting a location with a critical-section
/// guard minted by a *different* domain of the same scheme. The guard's
/// protection does not extend to the foreign domain's retirements, so the
/// engine rejects the pairing at the snapshot site.
fn foreign_domain_guard<S: Scheme>() {
    if !cfg!(debug_assertions) {
        return; // the cross-domain pairing check is a debug assertion
    }
    let d1 = DomainRef::<S>::new();
    let d2 = DomainRef::<S>::new();
    let slot = AtomicSharedPtr::<u64, S>::new_in(SharedPtr::new_in(7, &d1), &d1);
    let msg = panic_msg(|| {
        let cs = d2.cs(); // wrong domain
        let _snap = slot.get_snapshot(&cs);
    });
    assert!(
        msg.contains("different reclamation domain"),
        "diagnostic missing the cross-domain explanation:\n{msg}"
    );
}

#[test]
fn foreign_domain_guard_ebr() {
    foreign_domain_guard::<cdrc::EbrScheme>();
}
#[test]
fn foreign_domain_guard_ibr() {
    foreign_domain_guard::<cdrc::IbrScheme>();
}
#[test]
fn foreign_domain_guard_hp() {
    foreign_domain_guard::<cdrc::HpScheme>();
}
#[test]
fn foreign_domain_guard_hyaline() {
    foreign_domain_guard::<cdrc::HyalineScheme>();
}

// ---------------------------------------------------------------------------
// Protection-leak detection
// ---------------------------------------------------------------------------

#[test]
fn check_thread_clean_flags_open_section_then_passes() {
    let ebr = Ebr::new(Arc::new(GlobalEpoch::new()), SmrConfig::default());
    let t = current_tid();
    ebr.begin_critical_section(t);
    let msg = panic_msg(sanitize::check_thread_clean);
    assert!(
        msg.contains("leaked critical section (depth 1)"),
        "diagnostic missing leak description:\n{msg}"
    );
    assert!(
        msg.contains("entered at"),
        "diagnostic missing the section's entry site:\n{msg}"
    );
    ebr.end_critical_section(t);
    sanitize::check_thread_clean(); // balanced again
}

/// Threads that exit holding protections are reported (not panicked — the
/// check runs from a TLS destructor) and the reports are drainable. A single
/// test covers both leak shapes so concurrent tests never race on draining
/// the shared report log.
#[test]
fn thread_exit_with_leaked_protections_is_reported() {
    let _ = sanitize::take_leak_reports(); // drain stale state

    // Shape 1: an EBR section left open at thread exit.
    let ebr = Arc::new(Ebr::new(Arc::new(GlobalEpoch::new()), SmrConfig::default()));
    let e = Arc::clone(&ebr);
    std::thread::spawn(move || {
        let t = current_tid();
        e.begin_critical_section(t);
        // bug: no end_critical_section before the thread dies
    })
    .join()
    .unwrap();

    // Shape 2: a hazard slot still published at thread exit.
    let hp = Arc::new(Hp::new(Arc::new(GlobalEpoch::new()), SmrConfig::default()));
    let h = Arc::clone(&hp);
    std::thread::spawn(move || {
        let t = current_tid();
        let src = smr::sync::atomic::AtomicUsize::new(0x22c0);
        h.begin_critical_section(t);
        let (_, _guard) = h.acquire(t, &src);
        h.end_critical_section(t);
        // bug: the guard is never released before the thread dies
    })
    .join()
    .unwrap();

    let reports = sanitize::take_leak_reports();
    assert!(
        reports
            .iter()
            .any(|r| r.contains("unregistered with an open critical section")),
        "missing open-section report: {reports:?}"
    );
    assert!(
        reports
            .iter()
            .any(|r| r.contains("holding protection tokens") && r.contains("0x22c0")),
        "missing leaked-token report: {reports:?}"
    );
}
