//! Panic safety of the critical-section guards, across all four schemes: a
//! panic raised while a guard is live (and while the thread's deferred-
//! decrement batch is half full) must still exit the section during the
//! unwind — never stranding an open announcement that would pin every other
//! thread's garbage forever — and everything deferred must remain
//! reclaimable afterwards, down to `allocated() == freed()`.
//!
//! Collection is deliberately *skipped* while unwinding (applying deferred
//! operations runs user destructors, and a second panic would abort), so
//! these tests also check that the skipped work is merely deferred, not
//! lost: the next natural flush after `catch_unwind` drains it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cdrc::{
    AtomicSharedPtr, AtomicWeakPtr, DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme,
    Scheme, SharedPtr,
};

/// Drains a domain after the panic has been caught (single-threaded here,
/// so exclusive access holds).
fn drain<S: Scheme>(d: &DomainRef<S>) {
    // Safety: every test below is single-threaded and owns its domain.
    unsafe { d.drain_and_apply_all(smr::current_tid()) };
}

/// Panic while holding a strong section guard with a half-full decrement
/// batch: the guard's unwind drop must close the section, and the batched
/// entries must survive to the next flush.
fn panic_under_strong_guard<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::null_in(&d);
    let err = catch_unwind(AssertUnwindSafe(|| {
        let guard = d.cs();
        // Each displacing store batches one deferred strong decrement;
        // fewer than the batch capacity, so nothing has flushed yet.
        for i in 0..8 {
            slot.store(SharedPtr::new_in(i, &d));
        }
        let _ = &guard;
        panic!("injected panic under CsGuard");
    }));
    assert!(err.is_err(), "the panic must propagate");

    // The section must be closed: a quiescent-dependent fast path (direct
    // batch application) only fires when no section is open anywhere, and
    // reclamation overall must converge. If the unwind had stranded the
    // announcement, the drain below would leave the 8 displaced blocks
    // (plus the final occupant) alive forever.
    slot.store(SharedPtr::null());
    drop(slot);
    drop(d.clone()); // exercise the handle-drop path post-panic too
    drain(&d);
    assert_eq!(
        d.allocated(),
        d.freed(),
        "{}: garbage stranded by a panic under a strong guard",
        <S as smr::AcquireRetire>::scheme_name()
    );
}

/// Panic while holding a *full* (weak) section guard, with weak pointers in
/// play: both the weak and dispose announcements must unwind closed.
fn panic_under_weak_guard<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let strong: AtomicSharedPtr<u64, S> = AtomicSharedPtr::null_in(&d);
    let weak: AtomicWeakPtr<u64, S> = AtomicWeakPtr::null_in(&d);
    let err = catch_unwind(AssertUnwindSafe(|| {
        let guard = d.weak_cs();
        let v = SharedPtr::new_in(7u64, &d);
        weak.store(&v.downgrade());
        strong.store(v);
        let _ = &guard;
        panic!("injected panic under WeakCsGuard");
    }));
    assert!(err.is_err());
    strong.store(SharedPtr::null());
    weak.store(&cdrc::WeakPtr::null());
    drop((strong, weak));
    drain(&d);
    assert_eq!(
        d.allocated(),
        d.freed(),
        "garbage stranded by a panic under a weak guard"
    );
}

/// A fresh section on the same thread still works after a panic unwound an
/// earlier one (announcement depth bookkeeping survived the unwind).
fn sections_reusable_after_panic<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let _ = catch_unwind(AssertUnwindSafe(|| {
        let _guard = d.cs();
        panic!("unwind through an open section");
    }));
    let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::null_in(&d);
    {
        let _guard = d.cs();
        slot.store(SharedPtr::new_in(1, &d));
        let snap = slot.load();
        assert_eq!(snap.as_ref().copied(), Some(1));
    }
    drop(slot);
    drain(&d);
    assert_eq!(d.allocated(), d.freed());
}

macro_rules! scheme_tests {
    ($name:ident, $s:ty) => {
        mod $name {
            use super::*;

            #[test]
            fn strong_guard() {
                panic_under_strong_guard::<$s>();
            }

            #[test]
            fn weak_guard() {
                panic_under_weak_guard::<$s>();
            }

            #[test]
            fn reusable_after() {
                sections_reusable_after_panic::<$s>();
            }
        }
    };
}

scheme_tests!(ebr, EbrScheme);
scheme_tests!(ibr, IbrScheme);
scheme_tests!(hp, HpScheme);
scheme_tests!(hyaline, HyalineScheme);
