//! The witness-returning CAS contract, across all four schemes:
//!
//! * a successful compare-exchange returns the *exact* displaced pointer;
//! * a failure witness names a concurrent writer's install;
//! * tag-only transitions (`try_set_tag` / `fetch_or_tag`) interoperate
//!   with pointer witnesses in one loop;
//! * `swap` / `take` ownership transfer tears down to
//!   `allocated() == freed()`;
//! * a proptest model checks that witness-seeded retry loops and
//!   reload-seeded retry loops produce identical executions.

use proptest::prelude::*;

use cdrc::{
    AtomicSharedPtr, DomainRef, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme, SharedPtr,
    TaggedPtr,
};

/// Drains a domain after multi-threaded use (worker threads joined): their
/// retired lists live in per-slot state only `drain_and_apply_all` reaches.
fn drain<S: Scheme>(d: &DomainRef<S>) {
    // Safety: callers join every worker thread first, and each test owns
    // its private domains, so nobody else is using them.
    unsafe { d.drain_and_apply_all(smr::current_tid()) };
}

/// Success returns the exact displaced pointer; failure returns a witness
/// usable as the next `expected`.
fn displaced_and_witness<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let t = smr::current_tid();
    {
        let first: SharedPtr<u64, S> = SharedPtr::new_in(1, &d);
        let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new_in(first.clone(), &d);
        let second: SharedPtr<u64, S> = SharedPtr::new_in(2, &d);
        let cur = slot.load_tagged();
        let displaced = slot.compare_exchange(cur, &second).expect("CAS succeeds");
        assert!(
            displaced.ptr_eq(&first),
            "displaced pointer is the exact old occupant"
        );
        assert_eq!(displaced.as_ref(), Some(&1));
        drop(displaced);
        // Stale retry: the witness is the installed `second`, and feeding
        // it back as `expected` succeeds without any re-load.
        let w = slot.compare_exchange(cur, &first).expect_err("stale");
        assert_eq!(w.addr(), TaggedPtr::from_strong(&second).addr());
        let displaced = slot
            .compare_exchange(w, &first)
            .expect("witness-seeded retry");
        assert!(displaced.ptr_eq(&second));
        drop(displaced);
        drop((slot, first, second));
    }
    d.process_deferred(t);
    assert_eq!(d.allocated(), d.freed(), "clean teardown");
}

#[test]
fn displaced_and_witness_all_schemes() {
    displaced_and_witness::<EbrScheme>();
    displaced_and_witness::<IbrScheme>();
    displaced_and_witness::<HpScheme>();
    displaced_and_witness::<HyalineScheme>();
}

/// The failure witness of a CAS that lost to a concurrent writer names the
/// writer's install.
fn witness_matches_concurrent_install<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    {
        let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new_in(SharedPtr::new_in(0, &d), &d);
        let stale = slot.load_tagged();
        // A racing writer installs a known pointer...
        let theirs: SharedPtr<u64, S> = SharedPtr::new_in(42, &d);
        let their_word = TaggedPtr::from_strong(&theirs);
        std::thread::scope(|s| {
            let slot = &slot;
            let theirs = &theirs;
            s.spawn(move || {
                slot.store_from(theirs);
            });
        });
        // ...so our stale CAS must fail, and the witness must be exactly
        // that install.
        let mine: SharedPtr<u64, S> = SharedPtr::new_in(7, &d);
        let w = slot
            .compare_exchange(stale, &mine)
            .expect_err("the writer moved the slot");
        assert_eq!(w.addr(), their_word.addr(), "witness names the install");
        drop((slot, theirs, mine));
    }
    drain(&d);
    assert_eq!(d.allocated(), d.freed());
}

#[test]
fn witness_matches_concurrent_install_all_schemes() {
    witness_matches_concurrent_install::<EbrScheme>();
    witness_matches_concurrent_install::<IbrScheme>();
    witness_matches_concurrent_install::<HpScheme>();
    witness_matches_concurrent_install::<HyalineScheme>();
}

/// Tag transitions and pointer CASes compose through witnesses: a marked
/// word witnessed by a failed pointer CAS is a valid `expected` for
/// `try_set_tag`, and vice versa.
fn tag_transitions_interop<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let t = smr::current_tid();
    {
        let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new_in(SharedPtr::new_in(5, &d), &d);
        let cur = slot.load_tagged();
        // Mark the word; the Ok value is the installed (marked) word.
        let marked = slot.try_set_tag(cur, 0b1).expect("mark lands");
        assert_eq!(marked.tag(), 0b1);
        // A pointer CAS with the unmarked expected loses; its witness is
        // the marked word, which seeds a successful tag upgrade.
        let desired: SharedPtr<u64, S> = SharedPtr::new_in(6, &d);
        let w = slot
            .compare_exchange(cur, &desired)
            .expect_err("marked word defeats unmarked expected");
        assert_eq!(w, marked, "witness carries the mark");
        let both = slot.try_set_tag(w, 0b10).expect("tag upgrade via witness");
        assert_eq!(both.tag(), 0b11);
        // fetch_or_tag's return is itself a witness: feed it to the final
        // pointer CAS that swings the marked word out.
        let prev = slot.fetch_or_tag(0b100);
        assert_eq!(prev, both);
        let displaced = slot
            .compare_exchange_tagged(prev.with_tag(0b111), &desired, 0)
            .expect("witnessed marked word swings out");
        assert_eq!(displaced.as_ref(), Some(&5));
        drop(displaced);
        assert_eq!(slot.load_tagged().tag(), 0, "fresh install is unmarked");
        drop((slot, desired));
    }
    d.process_deferred(t);
    assert_eq!(d.allocated(), d.freed());
}

#[test]
fn tag_transitions_interop_all_schemes() {
    tag_transitions_interop::<EbrScheme>();
    tag_transitions_interop::<IbrScheme>();
    tag_transitions_interop::<HpScheme>();
    tag_transitions_interop::<HyalineScheme>();
}

/// Concurrent swap storm: values are conserved through displaced-ownership
/// hand-offs, and the private domain tears down to allocated() == freed().
fn swap_take_teardown<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    {
        let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new_in(SharedPtr::new_in(99, &d), &d);
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let slot = &slot;
                let d = &d;
                s.spawn(move || {
                    let mut mine: SharedPtr<u64, S> = SharedPtr::new_in(i, d);
                    for _ in 0..1_000 {
                        mine = slot.swap(mine);
                        assert!(!mine.is_null(), "swap storm never sees null");
                    }
                });
            }
        });
        let taken = slot.take();
        assert!(!taken.is_null());
        assert!(slot.take().is_null(), "slot is empty after take");
        drop(taken);
        drop(slot);
    }
    drain(&d);
    assert_eq!(
        d.allocated(),
        d.freed(),
        "every displaced hand-off balanced"
    );
}

#[test]
fn swap_take_teardown_all_schemes() {
    swap_take_teardown::<EbrScheme>();
    swap_take_teardown::<IbrScheme>();
    swap_take_teardown::<HpScheme>();
    swap_take_teardown::<HyalineScheme>();
}

/// `compare_exchange_weak` witness loops converge (spurious failures hand
/// back `expected` and the loop re-attempts).
fn weak_cas_converges<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let t = smr::current_tid();
    {
        let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new_in(SharedPtr::new_in(0, &d), &d);
        let desired: SharedPtr<u64, S> = SharedPtr::new_in(1, &d);
        let mut cur = slot.load_tagged();
        let displaced = loop {
            match slot.compare_exchange_weak(cur, &desired) {
                Ok(old) => break old,
                Err(w) => cur = w,
            }
        };
        assert_eq!(displaced.as_ref(), Some(&0));
        drop(displaced);
        drop((slot, desired));
    }
    d.process_deferred(t);
    assert_eq!(d.allocated(), d.freed());
}

#[test]
fn weak_cas_converges_all_schemes() {
    weak_cas_converges::<EbrScheme>();
    weak_cas_converges::<IbrScheme>();
    weak_cas_converges::<HpScheme>();
    weak_cas_converges::<HyalineScheme>();
}

/// The guard-threaded variant: the failure witness dereferences without any
/// further load, under every scheme (HP revalidates internally).
fn with_witness_dereferences<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    let t = smr::current_tid();
    {
        let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new_in(SharedPtr::new_in(3, &d), &d);
        let desired: SharedPtr<u64, S> = SharedPtr::new_in(4, &d);
        let cs = d.cs();
        let w = slot
            .compare_exchange_with(&cs, TaggedPtr::null(), &desired)
            .expect_err("null expected against a full slot");
        assert_eq!(w.as_ref(), Some(&3), "witness dereferences immediately");
        let displaced = slot
            .compare_exchange_with(&cs, w.tagged(), &desired)
            .expect("witness-seeded retry");
        assert!(displaced.ptr_eq(&w.to_shared()));
        drop(displaced);
        drop(w);
        drop(cs);
        drop((slot, desired));
    }
    d.process_deferred(t);
    assert_eq!(d.allocated(), d.freed());
}

#[test]
fn with_witness_dereferences_all_schemes() {
    with_witness_dereferences::<EbrScheme>();
    with_witness_dereferences::<IbrScheme>();
    with_witness_dereferences::<HpScheme>();
    with_witness_dereferences::<HyalineScheme>();
}

/// Concurrent `_with` witness storm: CAS losers dereference their failure
/// witnesses while winners swap fresh nodes in and drop the displaced ones
/// immediately (maximum reclamation pressure). Regression surface for the
/// witness-protection rule: schemes without
/// `PROTECTS_SECTION_READS` (IBR, HP) must revalidate against the live
/// word before handing a dereferenceable witness back — under the broken
/// stack-local shortcut this test reads freed memory under IBR.
fn with_witness_under_swap_pressure<S: Scheme>() {
    let d: DomainRef<S> = DomainRef::new();
    {
        let slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::new_in(SharedPtr::new_in(0, &d), &d);
        std::thread::scope(|s| {
            // Two swappers churn the slot, retiring displaced nodes as fast
            // as possible (each drop is a deferred decrement feeding the
            // scheme's scan).
            for w in 0..2u64 {
                let slot = &slot;
                let d = &d;
                s.spawn(move || {
                    for i in 0..3_000u64 {
                        drop(slot.swap(SharedPtr::new_in(w * 1_000_000 + i, d)));
                    }
                });
            }
            // Two witnesses-chasers CAS with stale expectations and read
            // every witness they are handed.
            for _ in 0..2 {
                let slot = &slot;
                let d = &d;
                s.spawn(move || {
                    let mine: SharedPtr<u64, S> = SharedPtr::new_in(7_777_777, d);
                    let cs = d.cs();
                    let mut expected = TaggedPtr::null();
                    for _ in 0..3_000 {
                        match slot.compare_exchange_with(&cs, expected, &mine) {
                            Ok(displaced) => {
                                if let Some(v) = displaced.as_ref() {
                                    assert!(*v < 2_000_000 || *v == 7_777_777);
                                }
                                expected = TaggedPtr::from_strong(&mine);
                            }
                            Err(w) => {
                                // The whole point: dereference the witness.
                                if let Some(v) = w.as_ref() {
                                    assert!(*v < 2_000_000 || *v == 7_777_777);
                                }
                                expected = w.tagged();
                            }
                        }
                    }
                });
            }
        });
        drop(slot);
    }
    drain(&d);
    assert_eq!(d.allocated(), d.freed());
}

#[test]
fn with_witness_under_swap_pressure_all_schemes() {
    with_witness_under_swap_pressure::<EbrScheme>();
    with_witness_under_swap_pressure::<IbrScheme>();
    with_witness_under_swap_pressure::<HpScheme>();
    with_witness_under_swap_pressure::<HyalineScheme>();
}

// ---------------------------------------------------------------------
// Proptest model: witness-seeded and reload-seeded loops are equivalent.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum SlotOp {
    Store(u64),
    /// CAS to `v` starting from a deliberately stale `expected`; the loop
    /// must converge via its reseeding strategy.
    CasFromStale(u64),
    Swap(u64),
    Take,
    SetTag(usize),
    FetchOr(usize),
}

fn slot_op() -> impl Strategy<Value = SlotOp> {
    prop_oneof![
        (0u64..1000).prop_map(SlotOp::Store),
        (0u64..1000).prop_map(SlotOp::CasFromStale),
        (0u64..1000).prop_map(SlotOp::Swap),
        Just(SlotOp::Take),
        (1usize..4).prop_map(SlotOp::SetTag),
        (1usize..4).prop_map(SlotOp::FetchOr),
    ]
}

/// Applies `op` to `slot`, reseeding failed CASes from the witness.
fn apply_witness<S: Scheme>(
    slot: &AtomicSharedPtr<u64, S>,
    d: &DomainRef<S>,
    op: SlotOp,
) -> (Option<u64>, usize) {
    match op {
        SlotOp::Store(v) => slot.store(SharedPtr::new_in(v, d)),
        SlotOp::CasFromStale(v) => {
            let desired = SharedPtr::new_in(v, d);
            let mut expected = TaggedPtr::null().with_tag(0b111); // never current
            loop {
                match slot.compare_exchange_tagged(expected, &desired, 0) {
                    Ok(_) => break,
                    Err(w) => expected = w, // the witness, not a re-load
                }
            }
        }
        SlotOp::Swap(v) => drop(slot.swap(SharedPtr::new_in(v, d))),
        SlotOp::Take => drop(slot.take()),
        SlotOp::SetTag(bits) => {
            let mut expected = TaggedPtr::null().with_tag(0b111);
            loop {
                match slot.try_set_tag(expected, bits) {
                    Ok(_) => break,
                    Err(w) => expected = w,
                }
            }
        }
        SlotOp::FetchOr(bits) => drop(slot.fetch_or_tag(bits)),
    }
    observe(slot)
}

/// Applies `op` to `slot`, reseeding failed CASes by re-loading — the
/// pre-witness idiom the new API replaces.
fn apply_reload<S: Scheme>(
    slot: &AtomicSharedPtr<u64, S>,
    d: &DomainRef<S>,
    op: SlotOp,
) -> (Option<u64>, usize) {
    match op {
        SlotOp::Store(v) => slot.store(SharedPtr::new_in(v, d)),
        SlotOp::CasFromStale(v) => {
            let desired = SharedPtr::new_in(v, d);
            let mut expected = TaggedPtr::null().with_tag(0b111);
            loop {
                match slot.compare_exchange_tagged(expected, &desired, 0) {
                    Ok(_) => break,
                    Err(_) => expected = slot.load_tagged(), // the old way
                }
            }
        }
        SlotOp::Swap(v) => drop(slot.swap(SharedPtr::new_in(v, d))),
        SlotOp::Take => drop(slot.take()),
        SlotOp::SetTag(bits) => {
            let mut expected = TaggedPtr::null().with_tag(0b111);
            loop {
                match slot.try_set_tag(expected, bits) {
                    Ok(_) => break,
                    Err(_) => expected = slot.load_tagged(),
                }
            }
        }
        SlotOp::FetchOr(bits) => drop(slot.fetch_or_tag(bits)),
    }
    observe(slot)
}

fn observe<S: Scheme>(slot: &AtomicSharedPtr<u64, S>) -> (Option<u64>, usize) {
    let tag = slot.load_tagged().tag();
    let val = slot.load().as_ref().copied();
    (val, tag)
}

fn run_model<S: Scheme>(ops: &[SlotOp]) {
    let t = smr::current_tid();
    let dw: DomainRef<S> = DomainRef::new();
    let dr: DomainRef<S> = DomainRef::new();
    {
        let witness_slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::null_in(&dw);
        let reload_slot: AtomicSharedPtr<u64, S> = AtomicSharedPtr::null_in(&dr);
        for &op in ops {
            let a = apply_witness(&witness_slot, &dw, op);
            let b = apply_reload(&reload_slot, &dr, op);
            assert_eq!(a, b, "witness and reload executions diverged at {op:?}");
        }
    }
    dw.process_deferred(t);
    dr.process_deferred(t);
    assert_eq!(dw.allocated(), dw.freed(), "witness domain balanced");
    assert_eq!(dr.allocated(), dr.freed(), "reload domain balanced");
}

fn cfg() -> ProptestConfig {
    ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(cfg())]

    #[test]
    fn witness_loop_matches_reload_loop_ebr(ops in proptest::collection::vec(slot_op(), 1..100)) {
        run_model::<EbrScheme>(&ops);
    }

    #[test]
    fn witness_loop_matches_reload_loop_hp(ops in proptest::collection::vec(slot_op(), 1..100)) {
        run_model::<HpScheme>(&ops);
    }

    #[test]
    fn witness_loop_matches_reload_loop_ibr(ops in proptest::collection::vec(slot_op(), 1..100)) {
        run_model::<IbrScheme>(&ops);
    }

    #[test]
    fn witness_loop_matches_reload_loop_hyaline(ops in proptest::collection::vec(slot_op(), 1..100)) {
        run_model::<HyalineScheme>(&ops);
    }
}
