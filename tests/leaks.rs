//! Leak accounting: every control block allocated through a domain is freed
//! once structures are dropped and deferred work is processed.
//!
//! These tests meter the *global* per-scheme domains, so they serialize on
//! a mutex; integration-test binaries run in their own process, so no other
//! test can pollute the counters.

use std::sync::Mutex;

use cdrc::{AtomicSharedPtr, EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme, SharedPtr};
use lockfree::rc::{
    RcDoubleLinkQueue, RcHarrisMichaelList, RcMichaelHashMap, RcNatarajanMittalTree,
};
use lockfree::{ConcurrentMap, ConcurrentQueue};

static METER: Mutex<()> = Mutex::new(());

fn with_meter<S: Scheme>(f: impl FnOnce()) -> (u64, u64) {
    let _g = METER.lock().unwrap();
    let d = S::global_domain();
    let t = smr::current_tid();
    // Safety: the meter mutex serializes every test in this binary (and
    // integration-test binaries are separate processes), so nobody else is
    // using this domain — including entries parked in the slots of worker
    // threads that have since exited.
    unsafe { d.drain_and_apply_all(t) };
    let before = (d.allocated(), d.freed());
    f();
    unsafe { d.drain_and_apply_all(t) };
    let after = (d.allocated(), d.freed());
    (after.0 - before.0, after.1 - before.1)
}

fn assert_balanced<S: Scheme>(f: impl FnOnce()) {
    let (allocated, freed) = with_meter::<S>(f);
    assert!(allocated > 0, "workload must allocate");
    assert_eq!(allocated, freed, "allocated == freed after teardown");
}

#[test]
fn shared_ptr_churn_balances() {
    assert_balanced::<EbrScheme>(|| {
        for i in 0..1000u64 {
            let p: SharedPtr<u64, EbrScheme> = SharedPtr::new(i);
            let q = p.clone();
            let w = p.downgrade();
            drop(p);
            assert!(w.upgrade().is_some());
            drop(q);
        }
    });
}

#[test]
fn atomic_swap_churn_balances() {
    assert_balanced::<IbrScheme>(|| {
        let slot: AtomicSharedPtr<u64, IbrScheme> = AtomicSharedPtr::null();
        for i in 0..1000u64 {
            slot.store(SharedPtr::new(i));
        }
        drop(slot);
    });
}

fn map_balances<S: Scheme, M: ConcurrentMap<u64, u64>>(make: impl FnOnce() -> M) {
    assert_balanced::<S>(|| {
        let map = make();
        for k in 0..500u64 {
            map.insert(k, k);
        }
        for k in 0..500u64 {
            if k % 2 == 0 {
                map.remove(&k);
            }
        }
        for k in 0..500u64 {
            map.get(&k);
        }
        drop(map);
    });
}

#[test]
fn rc_list_balances_all_schemes() {
    map_balances::<EbrScheme, _>(RcHarrisMichaelList::<u64, u64, EbrScheme>::new);
    map_balances::<IbrScheme, _>(RcHarrisMichaelList::<u64, u64, IbrScheme>::new);
    map_balances::<HpScheme, _>(RcHarrisMichaelList::<u64, u64, HpScheme>::new);
    map_balances::<HyalineScheme, _>(RcHarrisMichaelList::<u64, u64, HyalineScheme>::new);
}

#[test]
fn rc_tree_balances_all_schemes() {
    map_balances::<EbrScheme, _>(RcNatarajanMittalTree::<u64, u64, EbrScheme>::new);
    map_balances::<IbrScheme, _>(RcNatarajanMittalTree::<u64, u64, IbrScheme>::new);
    map_balances::<HpScheme, _>(RcNatarajanMittalTree::<u64, u64, HpScheme>::new);
    map_balances::<HyalineScheme, _>(RcNatarajanMittalTree::<u64, u64, HyalineScheme>::new);
}

#[test]
fn rc_hash_balances() {
    map_balances::<EbrScheme, _>(|| RcMichaelHashMap::<u64, u64, EbrScheme>::with_buckets(64));
}

#[test]
fn rc_queue_balances_all_schemes() {
    fn run<S: Scheme>() {
        assert_balanced::<S>(|| {
            let q: RcDoubleLinkQueue<u64, S> = RcDoubleLinkQueue::new();
            for i in 0..500u64 {
                q.enqueue(i);
            }
            for _ in 0..250 {
                q.dequeue();
            }
            drop(q);
        });
    }
    run::<EbrScheme>();
    run::<IbrScheme>();
    run::<HpScheme>();
    run::<HyalineScheme>();
}

#[test]
fn concurrent_tree_churn_balances() {
    assert_balanced::<EbrScheme>(|| {
        let tree = std::sync::Arc::new(RcNatarajanMittalTree::<u64, u64, EbrScheme>::new());
        let hs: Vec<_> = (0..4u64)
            .map(|i| {
                let tree = std::sync::Arc::clone(&tree);
                std::thread::spawn(move || {
                    for j in 0..600u64 {
                        let k = (i * 131 + j) % 256;
                        if j % 2 == 0 {
                            tree.insert(k, k);
                        } else {
                            tree.remove(&k);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // Worker threads exited; their slots' retired lists are drained by
        // `process_deferred` via slot recycling + drain_all in the meter.
        drop(tree);
    });
}

#[test]
fn weak_cycle_is_collected_not_leaked() {
    struct Node {
        next: AtomicSharedPtr<Node, EbrScheme>,
        prev: cdrc::AtomicWeakPtr<Node, EbrScheme>,
    }
    assert_balanced::<EbrScheme>(|| {
        // a → b strong; b → a weak. Dropping the externals must free both.
        let a: SharedPtr<Node, EbrScheme> = SharedPtr::new(Node {
            next: AtomicSharedPtr::null(),
            prev: cdrc::AtomicWeakPtr::null(),
        });
        let b: SharedPtr<Node, EbrScheme> = SharedPtr::new(Node {
            next: AtomicSharedPtr::null(),
            prev: cdrc::AtomicWeakPtr::null(),
        });
        a.as_ref().unwrap().next.store(b.clone());
        b.as_ref().unwrap().prev.store(&a.downgrade());
        drop(a);
        drop(b);
    });
}

#[test]
fn strong_cycle_leaks_as_documented() {
    // Inverse guard: a strong cycle must NOT be collected (reference
    // counting semantics) — this pins down the documented behaviour and
    // protects the weak-cycle test above from a vacuous pass.
    struct Node {
        next: AtomicSharedPtr<Node, HyalineScheme>,
    }
    let (allocated, freed) = with_meter::<HyalineScheme>(|| {
        let a: SharedPtr<Node, HyalineScheme> = SharedPtr::new(Node {
            next: AtomicSharedPtr::null(),
        });
        let b: SharedPtr<Node, HyalineScheme> = SharedPtr::new(Node {
            next: AtomicSharedPtr::null(),
        });
        a.as_ref().unwrap().next.store(b.clone());
        b.as_ref().unwrap().next.store(a.clone());
        drop(a);
        drop(b);
    });
    assert_eq!(allocated, 2);
    assert_eq!(freed, 0, "strong cycles leak by design; use weak edges");
}
