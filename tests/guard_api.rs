//! Guard-centric API integration: guard-batched operations must observe
//! exactly the same linearizable results as the guard-free wrappers, on
//! every structure variant and scheme, alone and when both call styles are
//! mixed on one structure.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use proptest::prelude::*;

use cdrc::{EbrScheme, HpScheme, HyalineScheme, IbrScheme, Scheme};
use lockfree::manual::{DoubleLinkQueue, HarrisMichaelList, MichaelHashMap, NatarajanMittalTree};
use lockfree::rc::{
    RcDoubleLinkQueue, RcHarrisMichaelList, RcMichaelHashMap, RcNatarajanMittalTree,
};
use lockfree::{ConcurrentMap, ConcurrentQueue};
use smr::AcquireRetire;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Drives `map` through a deterministic op sequence in batches of 16 under
/// one guard each, checking every result against a sequential model — then
/// replays the same sequence guard-free on `twin` and checks the two
/// structures agree key by key.
fn batched_matches_guard_free<M: ConcurrentMap<u64, u64>>(
    map: &M,
    twin: &M,
    seed: u64,
    keyspace: u64,
    steps: u32,
) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut state = seed | 1;
    let mut step = 0;
    while step < steps {
        let guard = map.pin();
        for _ in 0..16 {
            if step >= steps {
                break;
            }
            step += 1;
            let k = lcg(&mut state) % keyspace;
            match lcg(&mut state) % 3 {
                0 => {
                    let expect = model.insert(k, k * 3).is_none();
                    assert_eq!(map.insert_with(k, k * 3, &guard), expect);
                    assert_eq!(twin.insert(k, k * 3), expect);
                }
                1 => {
                    let expect = model.remove(&k).is_some();
                    assert_eq!(map.remove_with(&k, &guard), expect);
                    assert_eq!(twin.remove(&k), expect);
                }
                _ => {
                    let expect = model.get(&k).copied();
                    assert_eq!(map.get_with(&k, &guard), expect);
                    assert_eq!(twin.get(&k), expect);
                }
            }
        }
        drop(guard);
    }
    // Final sweep through both call styles.
    let guard = map.pin();
    for k in 0..keyspace {
        let expect = model.get(&k).copied();
        assert_eq!(map.get_with(&k, &guard), expect);
        assert_eq!(map.get(&k), expect, "styles nest on one structure");
        assert_eq!(twin.get(&k), expect);
    }
}

macro_rules! scheme_matrix {
    ($name:ident, $body:tt) => {
        mod $name {
            use super::*;
            #[test]
            fn ebr() {
                run::<EbrScheme>();
            }
            #[test]
            fn ibr() {
                run::<IbrScheme>();
            }
            #[test]
            fn hp() {
                run::<HpScheme>();
            }
            #[test]
            fn hyaline() {
                run::<HyalineScheme>();
            }
            fn run<S: Scheme + AcquireRetire>() $body
        }
    };
}

scheme_matrix!(rc_list_batched, {
    let a: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new();
    let b: RcHarrisMichaelList<u64, u64, S> = RcHarrisMichaelList::new();
    batched_matches_guard_free(&a, &b, 21, 48, 2500);
});

scheme_matrix!(rc_hash_batched, {
    let a: RcMichaelHashMap<u64, u64, S> = RcMichaelHashMap::with_buckets(16);
    let b: RcMichaelHashMap<u64, u64, S> = RcMichaelHashMap::with_buckets(16);
    batched_matches_guard_free(&a, &b, 22, 256, 2500);
});

scheme_matrix!(rc_tree_batched, {
    let a: RcNatarajanMittalTree<u64, u64, S> = RcNatarajanMittalTree::new();
    let b: RcNatarajanMittalTree<u64, u64, S> = RcNatarajanMittalTree::new();
    batched_matches_guard_free(&a, &b, 23, 96, 2500);
});

scheme_matrix!(manual_list_batched, {
    let a: HarrisMichaelList<u64, u64, S> = HarrisMichaelList::new();
    let b: HarrisMichaelList<u64, u64, S> = HarrisMichaelList::new();
    batched_matches_guard_free(&a, &b, 24, 48, 2500);
});

scheme_matrix!(manual_hash_batched, {
    let a: MichaelHashMap<u64, u64, S> = MichaelHashMap::with_buckets(16);
    let b: MichaelHashMap<u64, u64, S> = MichaelHashMap::with_buckets(16);
    batched_matches_guard_free(&a, &b, 25, 256, 2500);
});

scheme_matrix!(manual_tree_batched, {
    let a: NatarajanMittalTree<u64, u64, S> = NatarajanMittalTree::new();
    let b: NatarajanMittalTree<u64, u64, S> = NatarajanMittalTree::new();
    batched_matches_guard_free(&a, &b, 26, 96, 2500);
});

/// Guard-batched range queries agree with guard-free ones and the model.
#[test]
fn range_with_matches_range() {
    fn run<S: Scheme>() {
        let tree: RcNatarajanMittalTree<u64, u64, S> = RcNatarajanMittalTree::new();
        let guard = tree.pin();
        for k in (0..500).step_by(2) {
            tree.insert_with(k, k, &guard);
        }
        assert_eq!(tree.range_with(&0, &500, usize::MAX, &guard), Some(250));
        assert_eq!(tree.range(&0, &500, usize::MAX), Some(250));
        assert_eq!(tree.range_with(&100, &200, 7, &guard), Some(7));
    }
    run::<EbrScheme>();
    run::<HpScheme>();
}

/// Concurrent mixing: half the threads drive guard-batched loops, half use
/// the guard-free wrappers, on disjoint key ranges of one structure; each
/// thread's writes must be observed exactly.
fn concurrent_mixed_styles<M: ConcurrentMap<u64, u64> + 'static>(map: Arc<M>) {
    let hs: Vec<_> = (0..8u64)
        .map(|i| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                if i % 2 == 0 {
                    // Guard-batched style: one pin per 32-op run.
                    let mut j = 0u64;
                    while j < 320 {
                        let guard = map.pin();
                        for _ in 0..32 {
                            let k = i * 10_000 + j;
                            assert!(map.insert_with(k, k + 1, &guard));
                            assert_eq!(map.get_with(&k, &guard), Some(k + 1));
                            if j.is_multiple_of(3) {
                                assert!(map.remove_with(&k, &guard));
                            }
                            j += 1;
                        }
                        drop(guard);
                    }
                } else {
                    for j in 0..320u64 {
                        let k = i * 10_000 + j;
                        assert!(map.insert(k, k + 1));
                        assert_eq!(map.get(&k), Some(k + 1));
                        if j % 3 == 0 {
                            assert!(map.remove(&k));
                        }
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let guard = map.pin();
    for i in 0..8u64 {
        for j in 0..320u64 {
            let k = i * 10_000 + j;
            let expect = if j % 3 == 0 { None } else { Some(k + 1) };
            assert_eq!(map.get_with(&k, &guard), expect);
        }
    }
}

scheme_matrix!(rc_tree_concurrent_mixed, {
    concurrent_mixed_styles(Arc::new(RcNatarajanMittalTree::<u64, u64, S>::new()));
});

scheme_matrix!(manual_list_concurrent_mixed, {
    concurrent_mixed_styles(Arc::new(HarrisMichaelList::<u64, u64, S>::new()));
});

/// Queues: batched pop/push under one full guard conserves elements and
/// order, matching a sequential model, for the weak-edge RC queue, the
/// manual queue and the lock-based baseline.
#[test]
fn queue_batched_matches_model() {
    fn drive<Q: ConcurrentQueue<u64>>(q: &Q) {
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut state = 0xABCDu64;
        let mut step = 0;
        while step < 600 {
            let guard = q.pin();
            for _ in 0..16 {
                step += 1;
                if !lcg(&mut state).is_multiple_of(3) {
                    let v = lcg(&mut state) % 1000;
                    q.enqueue_with(v, &guard);
                    model.push_back(v);
                } else {
                    assert_eq!(q.dequeue_with(&guard), model.pop_front());
                }
            }
            drop(guard);
        }
        // Drain guard-free: styles interoperate.
        while let Some(v) = model.pop_front() {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
    }
    drive(&RcDoubleLinkQueue::<u64, HpScheme>::new());
    drive(&RcDoubleLinkQueue::<u64, EbrScheme>::new());
    drive(&DoubleLinkQueue::<u64, smr::Ebr>::new());
    drive(&lockfree::locked::LockedDoubleLinkQueue::<u64>::new());
}

#[derive(Debug, Clone, Copy)]
enum MixedOp {
    /// Run inside the current batch guard.
    Batched(u8, u64, u64),
    /// Drop the guard, run guard-free, re-pin.
    Free(u8, u64, u64),
}

fn mixed_op() -> impl Strategy<Value = MixedOp> {
    prop_oneof![
        (0u8..3, 0u64..64, 0u64..1000).prop_map(|(o, k, v)| MixedOp::Batched(o, k, v)),
        (0u8..3, 0u64..64, 0u64..1000).prop_map(|(o, k, v)| MixedOp::Free(o, k, v)),
    ]
}

fn apply_model(model: &mut BTreeMap<u64, u64>, o: u8, k: u64, v: u64) -> Option<u64> {
    use std::collections::btree_map::Entry;
    match o {
        0 => match model.entry(k) {
            Entry::Vacant(e) => {
                e.insert(v);
                Some(1)
            }
            Entry::Occupied(_) => Some(0),
        },
        1 => Some(model.remove(&k).is_some() as u64),
        _ => model.get(&k).copied(),
    }
}

fn apply_with<M: ConcurrentMap<u64, u64>>(
    map: &M,
    guard: &M::Guard,
    o: u8,
    k: u64,
    v: u64,
) -> Option<u64> {
    match o {
        0 => Some(map.insert_with(k, v, guard) as u64),
        1 => Some(map.remove_with(&k, guard) as u64),
        _ => map.get_with(&k, guard),
    }
}

fn apply_free<M: ConcurrentMap<u64, u64>>(map: &M, o: u8, k: u64, v: u64) -> Option<u64> {
    match o {
        0 => Some(map.insert(k, v) as u64),
        1 => Some(map.remove(&k) as u64),
        _ => map.get(&k),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Property: an arbitrary interleaving of guard-batched and guard-free
    /// calls on ONE structure is indistinguishable from the sequential
    /// model — the guard only changes when fences are paid, never results.
    #[test]
    fn mixed_call_styles_match_model(ops in proptest::collection::vec(mixed_op(), 1..250)) {
        let map: RcHarrisMichaelList<u64, u64, EbrScheme> = RcHarrisMichaelList::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut guard = map.pin();
        for op in ops {
            match op {
                MixedOp::Batched(o, k, v) => {
                    let e = apply_model(&mut model, o, k, v);
                    prop_assert_eq!(apply_with(&map, &guard, o, k, v), e);
                }
                MixedOp::Free(o, k, v) => {
                    drop(guard);
                    let e = apply_model(&mut model, o, k, v);
                    prop_assert_eq!(apply_free(&map, o, k, v), e);
                    guard = map.pin();
                }
            }
        }
        drop(guard);
        for k in 0..64u64 {
            prop_assert_eq!(map.get(&k), model.get(&k).copied());
        }
    }

    /// Same property on the manual HP list — the protected-pointer scheme
    /// with the most delicate guard discipline.
    #[test]
    fn mixed_call_styles_match_model_manual_hp(ops in proptest::collection::vec(mixed_op(), 1..250)) {
        let map: HarrisMichaelList<u64, u64, smr::Hp> = HarrisMichaelList::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut guard = map.pin();
        for op in ops {
            match op {
                MixedOp::Batched(o, k, v) => {
                    let e = apply_model(&mut model, o, k, v);
                    prop_assert_eq!(apply_with(&map, &guard, o, k, v), e);
                }
                MixedOp::Free(o, k, v) => {
                    drop(guard);
                    let e = apply_model(&mut model, o, k, v);
                    prop_assert_eq!(apply_free(&map, o, k, v), e);
                    guard = map.pin();
                }
            }
        }
    }
}
